#include "core/deps.h"

#include <functional>

#include "fs/path.h"
#include "specs/library.h"

namespace sash::core {

namespace {

using syntax::Command;
using syntax::CommandKind;
using syntax::Word;
using syntax::WordPart;
using syntax::WordPartKind;

// Static text of a word with tildes expanded; false for dynamic words.
bool StaticishText(const Word& word, std::string* out) {
  std::string text;
  for (const WordPart& p : word.parts) {
    switch (p.kind) {
      case WordPartKind::kLiteral:
      case WordPartKind::kSingleQuoted:
        text += p.text;
        break;
      case WordPartKind::kDoubleQuoted:
        for (const WordPart& c : p.children) {
          if (c.kind != WordPartKind::kLiteral) {
            return false;
          }
          text += c.text;
        }
        break;
      case WordPartKind::kTilde:
        text += p.text.empty() ? "/home/user" : "/home/" + p.text;
        break;
      default:
        return false;
    }
  }
  *out = std::move(text);
  return true;
}

void CollectVarReads(const Word& word, std::set<std::string>* reads) {
  std::function<void(const WordPart&)> scan = [&](const WordPart& p) {
    if (p.kind == WordPartKind::kParam) {
      reads->insert(p.param_name);
    }
    for (const WordPart& c : p.children) {
      scan(c);
    }
    if (p.param_arg != nullptr) {
      for (const WordPart& c : p.param_arg->parts) {
        scan(c);
      }
    }
    if (p.kind == WordPartKind::kCommandSub && p.command != nullptr) {
      syntax::VisitCommands(*p.command, true, [&](const Command& sub) {
        if (sub.kind != CommandKind::kSimple) {
          return;
        }
        for (const Word& w : sub.simple.words) {
          for (const WordPart& wp : w.parts) {
            scan(wp);
          }
        }
      });
    }
  };
  for (const WordPart& p : word.parts) {
    scan(p);
  }
}

// Whether two path-prefix sets can touch the same file.
bool PathsOverlap(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const std::string& pa : a) {
    for (const std::string& pb : b) {
      if (pa == pb || fs::IsAbsolute(pa) != fs::IsAbsolute(pb)) {
        if (pa == pb) {
          return true;
        }
        continue;
      }
      const std::string& shorter = pa.size() <= pb.size() ? pa : pb;
      const std::string& longer = pa.size() <= pb.size() ? pb : pa;
      if (longer.size() > shorter.size() && longer.compare(0, shorter.size(), shorter) == 0 &&
          (shorter == "/" || longer[shorter.size()] == '/')) {
        return true;
      }
    }
  }
  return false;
}

bool Intersects(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) {
      return true;
    }
  }
  return false;
}

CommandDeps AnalyzeOne(const Command& cmd, int index) {
  CommandDeps deps;
  deps.index = index;
  deps.display = syntax::ToShellSyntax(cmd);
  deps.range = cmd.range;

  if (cmd.kind != CommandKind::kSimple) {
    // Pipelines of simple commands can still be summarized stage by stage;
    // other compounds are barriers.
    if (cmd.kind == CommandKind::kPipeline) {
      for (const syntax::CommandPtr& stage : cmd.pipeline.commands) {
        CommandDeps stage_deps = AnalyzeOne(*stage, index);
        deps.barrier = deps.barrier || stage_deps.barrier;
        deps.path_reads.insert(stage_deps.path_reads.begin(), stage_deps.path_reads.end());
        deps.path_writes.insert(stage_deps.path_writes.begin(), stage_deps.path_writes.end());
        deps.var_reads.insert(stage_deps.var_reads.begin(), stage_deps.var_reads.end());
        deps.var_writes.insert(stage_deps.var_writes.begin(), stage_deps.var_writes.end());
      }
      return deps;
    }
    deps.barrier = true;
    return deps;
  }

  for (const syntax::Assignment& a : cmd.simple.assignments) {
    deps.var_writes.insert(a.name);
    CollectVarReads(a.value, &deps.var_reads);
  }
  for (const Word& w : cmd.simple.words) {
    CollectVarReads(w, &deps.var_reads);
  }
  for (const syntax::Redirect& r : cmd.redirects) {
    std::string target;
    if (!StaticishText(r.target, &target)) {
      deps.barrier = true;
      continue;
    }
    switch (r.op) {
      case syntax::RedirOp::kOut:
      case syntax::RedirOp::kAppend:
      case syntax::RedirOp::kClobber:
        deps.path_writes.insert(fs::NormalizePath(target));
        break;
      case syntax::RedirOp::kIn:
      case syntax::RedirOp::kReadWrite:
        deps.path_reads.insert(fs::NormalizePath(target));
        break;
      default:
        break;
    }
  }

  if (cmd.simple.words.empty()) {
    return deps;  // Pure assignment.
  }
  std::string name;
  if (!cmd.simple.words[0].IsStatic(&name)) {
    deps.barrier = true;
    return deps;
  }
  if (name == "echo" || name == "true" || name == "false" || name == ":" || name == "printf") {
    return deps;  // Pure stream producers.
  }
  const specs::CommandSpec* spec = specs::SpecLibrary::BuiltinGroundTruth().Find(name);
  if (spec == nullptr) {
    deps.barrier = true;  // Unknown command: assume anything.
    return deps;
  }
  // Static argv -> invocation -> per-operand effect classes.
  std::vector<std::string> args;
  for (size_t i = 1; i < cmd.simple.words.size(); ++i) {
    std::string text;
    if (!StaticishText(cmd.simple.words[i], &text)) {
      deps.barrier = true;
      return deps;
    }
    args.push_back(std::move(text));
  }
  Result<specs::Invocation> inv = specs::ParseInvocation(spec->syntax, args);
  if (!inv.ok()) {
    deps.barrier = true;
    return deps;
  }
  std::vector<const specs::OperandSpec*> slots =
      specs::AssignOperands(spec->syntax, static_cast<int>(inv->operands.size()));
  // Union effect classes over flag-matching cases.
  bool reads = false;
  bool writes = false;
  for (const specs::SpecCase& c : spec->cases) {
    if (!c.FlagsMatch(*inv)) {
      continue;
    }
    for (const specs::Effect& e : c.effects) {
      if (e.kind == specs::EffectKind::kReadFile) {
        reads = true;
      } else if (e.kind != specs::EffectKind::kNone) {
        writes = true;
      }
    }
  }
  for (size_t i = 0; i < inv->operands.size(); ++i) {
    if (slots[i] == nullptr || slots[i]->kind != specs::ValueKind::kPath) {
      continue;
    }
    std::string path = fs::NormalizePath(inv->operands[i]);
    if (writes) {
      deps.path_writes.insert(path);
    }
    if (reads || !writes) {
      deps.path_reads.insert(path);  // Conservatively a read when unsure.
    }
  }
  return deps;
}

}  // namespace

bool DependencyReport::DependsOn(int later, int earlier) const {
  for (const auto& [i, j] : edges) {
    if (i == earlier && j == later) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> DependencyReport::Suggestions() const {
  std::vector<std::string> out;
  for (const auto& [i, j] : independent_adjacent) {
    out.push_back("commands " + std::to_string(i + 1) + " and " + std::to_string(j + 1) +
                  " are independent (no shared variables or file-system locations); they can "
                  "be reordered or run in parallel: `" +
                  commands[static_cast<size_t>(i)].display + "` / `" +
                  commands[static_cast<size_t>(j)].display + "`");
  }
  return out;
}

DependencyReport AnalyzeDependencies(const syntax::Program& program) {
  DependencyReport report;
  if (program.body == nullptr) {
    return report;
  }
  // The top-level sequence: a kList body's elements, or the single command.
  std::vector<const Command*> sequence;
  if (program.body->kind == CommandKind::kList) {
    bool plain_sequence = true;
    for (syntax::ListOp op : program.body->list.ops) {
      if (op == syntax::ListOp::kAnd || op == syntax::ListOp::kOr) {
        plain_sequence = false;  // && / || chains encode control deps.
      }
    }
    if (plain_sequence) {
      for (const syntax::CommandPtr& c : program.body->list.commands) {
        sequence.push_back(c);
      }
    } else {
      sequence.push_back(program.body);
    }
  } else {
    sequence.push_back(program.body);
  }

  for (size_t i = 0; i < sequence.size(); ++i) {
    report.commands.push_back(AnalyzeOne(*sequence[i], static_cast<int>(i)));
  }

  auto conflicts = [&](const CommandDeps& a, const CommandDeps& b) {
    if (a.barrier || b.barrier) {
      return true;
    }
    // Write-write, write-read, read-write conflicts on paths or variables.
    if (PathsOverlap(a.path_writes, b.path_writes) || PathsOverlap(a.path_writes, b.path_reads) ||
        PathsOverlap(a.path_reads, b.path_writes)) {
      return true;
    }
    if (Intersects(a.var_writes, b.var_writes) || Intersects(a.var_writes, b.var_reads) ||
        Intersects(a.var_reads, b.var_writes)) {
      return true;
    }
    return false;
  };

  for (size_t i = 0; i < report.commands.size(); ++i) {
    for (size_t j = i + 1; j < report.commands.size(); ++j) {
      if (conflicts(report.commands[i], report.commands[j])) {
        report.edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  for (size_t i = 0; i + 1 < report.commands.size(); ++i) {
    if (!report.DependsOn(static_cast<int>(i + 1), static_cast<int>(i))) {
      report.independent_adjacent.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
    }
  }
  return report;
}

}  // namespace sash::core
