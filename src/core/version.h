// Version of the sash library and CLI, bumped per release.
#ifndef SASH_CORE_VERSION_H_
#define SASH_CORE_VERSION_H_

namespace sash::core {

inline constexpr char kVersion[] = "0.5.0";

}  // namespace sash::core

#endif  // SASH_CORE_VERSION_H_
