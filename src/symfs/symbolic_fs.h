// Symbolic file-system state: constraints on what exists where, accumulated
// as the symbolic engine applies command postconditions, and queried when it
// checks preconditions.
//
// Paths are either concrete absolute strings or *variable-rooted*: a pair of
// (variable placeholder, relative suffix), e.g. ($1, "config") for the
// paper's §4 example
//     rm -r $1; cat $1/config
// After rm's postcondition marks ($1, "") absent, cat's precondition that
// ($1, "config") is a file contradicts the ancestor's absence: the engine
// reports that the invocation will *always* fail.
#ifndef SASH_SYMFS_SYMBOLIC_FS_H_
#define SASH_SYMFS_SYMBOLIC_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "specs/hoare.h"
#include "util/hash.h"

namespace sash::symfs {

// A symbolic path: `base` is "" for concrete absolute paths (then `rel` is the
// absolute path), or a variable placeholder like "$1" (then `rel` is the
// suffix under it, possibly empty).
struct PathKey {
  std::string base;  // "" (concrete) or "$name".
  std::string rel;   // Normalized, no leading slash for var-rooted keys.

  static PathKey Concrete(std::string_view absolute_path);
  static PathKey VarRooted(std::string_view var, std::string_view suffix);

  bool operator<(const PathKey& o) const {
    return base != o.base ? base < o.base : rel < o.rel;
  }
  bool operator==(const PathKey&) const = default;

  std::string ToString() const;

  // True when `this` is a strict ancestor directory of `other`.
  bool IsAncestorOf(const PathKey& other) const;
};

using specs::PathState;

// Three-valued answer to "what do we know about this path".
enum class Knowledge {
  kUnknown,        // Nothing recorded; environment-dependent.
  kKnown,          // A definite PathState is recorded or derivable.
  kContradiction,  // The store already proves the opposite of a new assertion.
};

class SymbolicFs {
 public:
  // Records that `key` is now in `state`, updating derived facts:
  //   - marking a path absent marks every recorded descendant absent;
  //   - marking a path existing marks every ancestor a directory.
  // Returns kContradiction when the new fact is inconsistent with what is
  // already *required* to hold (used for always-fails detection at check
  // time; Assume never fails, it overwrites — commands change the world).
  void Assume(const PathKey& key, PathState state);

  // What the store knows about `key`, deriving from ancestors:
  // an absent ancestor forces kAbsent; otherwise any recorded fact.
  PathState Query(const PathKey& key) const;

  // Would requiring `state` of `key` be satisfiable given current knowledge?
  // kKnown = the requirement definitely holds; kContradiction = it definitely
  // cannot hold; kUnknown = depends on the environment.
  Knowledge CheckRequirement(const PathKey& key, PathState required) const;

  // Effect application (command postconditions).
  void ApplyDeleteTree(const PathKey& key);
  void ApplyDeleteFile(const PathKey& key);
  void ApplyCreateFile(const PathKey& key);
  void ApplyCreateDir(const PathKey& key);

  // Number of recorded facts (for explosion benchmarks).
  size_t FactCount() const { return facts_.size(); }

  // Debug rendering, one "path: state" per line.
  std::string ToString() const;

  // Order-independent 64-bit digest of the fact set, maintained
  // incrementally on every mutation (all of which funnel through Assume).
  // Content-based (hashes path strings and states), so it is stable across
  // runs and thread interleavings; used by the state-merge digest.
  uint64_t Digest() const { return digest_.value(); }

 private:
  static uint64_t FactHash(const PathKey& key, PathState state);
  // The only writers of facts_; they keep digest_ in sync.
  void SetFact(const PathKey& key, PathState state);
  std::map<PathKey, PathState>::iterator EraseFact(
      std::map<PathKey, PathState>::iterator it);

  std::map<PathKey, PathState> facts_;
  util::CommutativeDigest digest_;
};

}  // namespace sash::symfs

#endif  // SASH_SYMFS_SYMBOLIC_FS_H_
