#include "symfs/symbolic_fs.h"

#include "fs/path.h"
#include "util/strings.h"

namespace sash::symfs {

PathKey PathKey::Concrete(std::string_view absolute_path) {
  PathKey k;
  k.base = "";
  k.rel = fs::NormalizePath(absolute_path);
  return k;
}

PathKey PathKey::VarRooted(std::string_view var, std::string_view suffix) {
  PathKey k;
  k.base = std::string(var);
  std::string rel = fs::NormalizePath(suffix);
  if (rel == "." || rel == "/") {
    rel = "";
  }
  while (!rel.empty() && rel.front() == '/') {
    rel.erase(rel.begin());
  }
  k.rel = rel;
  return k;
}

std::string PathKey::ToString() const {
  if (base.empty()) {
    return rel;
  }
  if (rel.empty()) {
    return base;
  }
  return base + "/" + rel;
}

bool PathKey::IsAncestorOf(const PathKey& other) const {
  if (base != other.base) {
    return false;
  }
  if (rel == other.rel) {
    return false;
  }
  if (rel.empty()) {
    // The variable root itself (or "/" for concrete "" — normalized concrete
    // roots are "/" not "", so this branch is var-rooted only).
    return !other.rel.empty();
  }
  if (rel == "/") {
    return other.rel.size() > 1;
  }
  return other.rel.size() > rel.size() && other.rel.compare(0, rel.size(), rel) == 0 &&
         other.rel[rel.size()] == '/';
}

namespace {

// Strict ancestors of `key`, nearest first. The concrete root "/" and a
// var-rooted base with empty rel are included (except "/" itself, which is
// always a directory and never worth recording).
std::vector<PathKey> Ancestors(const PathKey& key) {
  std::vector<PathKey> out;
  if (key.base.empty()) {
    std::string cur = key.rel;
    while (cur != "/" && cur != ".") {
      cur = fs::DirName(cur);
      if (cur == "/" || cur == ".") {
        break;
      }
      out.push_back(PathKey{"", cur});
    }
  } else if (!key.rel.empty()) {
    std::string cur = key.rel;
    while (true) {
      std::string dir = fs::DirName(cur);
      if (dir == "." || dir == cur) {
        out.push_back(PathKey{key.base, ""});
        break;
      }
      out.push_back(PathKey{key.base, dir});
      cur = dir;
    }
  }
  return out;
}

}  // namespace

uint64_t SymbolicFs::FactHash(const PathKey& key, PathState state) {
  uint64_t h = util::Fnv1a(key.base, 0x5f73666b65793a00ull);  // "_sfskey:" tag
  h = util::Fnv1a("\x1f", h);  // Separator: ("a","b/c") != ("ab","/c").
  h = util::Fnv1a(key.rel, h);
  return util::FnvMix64(h, static_cast<uint64_t>(state));
}

void SymbolicFs::SetFact(const PathKey& key, PathState state) {
  auto [it, inserted] = facts_.try_emplace(key, state);
  if (!inserted) {
    if (it->second == state) {
      return;
    }
    digest_.Remove(FactHash(it->first, it->second));
    it->second = state;
  }
  digest_.Add(FactHash(key, state));
}

std::map<PathKey, PathState>::iterator SymbolicFs::EraseFact(
    std::map<PathKey, PathState>::iterator it) {
  digest_.Remove(FactHash(it->first, it->second));
  return facts_.erase(it);
}

void SymbolicFs::Assume(const PathKey& key, PathState state) {
  if (state == PathState::kAbsent) {
    // Every recorded descendant is gone too.
    for (auto it = facts_.begin(); it != facts_.end();) {
      if (key.IsAncestorOf(it->first)) {
        it = EraseFact(it);
      } else {
        ++it;
      }
    }
  }
  if (state == PathState::kIsFile || state == PathState::kIsDir || state == PathState::kExists) {
    // Everything above an existing path is a directory.
    for (const PathKey& parent : Ancestors(key)) {
      SetFact(parent, PathState::kIsDir);
    }
  }
  SetFact(key, state);
}

PathState SymbolicFs::Query(const PathKey& key) const {
  // An absent ancestor forces absence.
  for (const auto& [fact_key, fact_state] : facts_) {
    if (fact_state == PathState::kAbsent && fact_key.IsAncestorOf(key)) {
      return PathState::kAbsent;
    }
    // A *file* ancestor also makes the path unresolvable; report absent.
    if (fact_state == PathState::kIsFile && fact_key.IsAncestorOf(key)) {
      return PathState::kAbsent;
    }
  }
  auto it = facts_.find(key);
  if (it != facts_.end()) {
    return it->second;
  }
  // A recorded descendant implies this path is a directory.
  for (const auto& [fact_key, fact_state] : facts_) {
    if (fact_state != PathState::kAbsent && key.IsAncestorOf(fact_key)) {
      return PathState::kIsDir;
    }
  }
  return PathState::kAny;
}

Knowledge SymbolicFs::CheckRequirement(const PathKey& key, PathState required) const {
  PathState known = Query(key);
  if (known == PathState::kAny || required == PathState::kAny) {
    return known == PathState::kAny && required != PathState::kAny ? Knowledge::kUnknown
                                                                   : Knowledge::kKnown;
  }
  if (specs::StateSatisfies(known, required)) {
    return Knowledge::kKnown;
  }
  // kExists recorded (file-or-dir, exact kind unknown) may still satisfy
  // kIsFile/kIsDir.
  if (known == PathState::kExists &&
      (required == PathState::kIsFile || required == PathState::kIsDir)) {
    return Knowledge::kUnknown;
  }
  return Knowledge::kContradiction;
}

void SymbolicFs::ApplyDeleteTree(const PathKey& key) { Assume(key, PathState::kAbsent); }

void SymbolicFs::ApplyDeleteFile(const PathKey& key) { Assume(key, PathState::kAbsent); }

void SymbolicFs::ApplyCreateFile(const PathKey& key) { Assume(key, PathState::kIsFile); }

void SymbolicFs::ApplyCreateDir(const PathKey& key) { Assume(key, PathState::kIsDir); }

std::string SymbolicFs::ToString() const {
  std::string out;
  for (const auto& [key, state] : facts_) {
    out += key.ToString();
    out += ": ";
    out += specs::PathStateName(state);
    out += '\n';
  }
  return out;
}

}  // namespace sash::symfs
