#include "stream/dataflow.h"

#include <algorithm>

namespace sash::stream {

int DataflowGraph::AddNode(rtypes::CommandType type, std::string label) {
  Node n;
  n.type = std::move(type);
  n.label = std::move(label);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void DataflowGraph::AddEdge(int from, int to) {
  nodes_[static_cast<size_t>(to)].preds.push_back(from);
}

void DataflowGraph::Seed(int node, regex::Regex lang) {
  nodes_[static_cast<size_t>(node)].seed = std::move(lang);
}

DataflowGraph::Solution DataflowGraph::SolveLeastFixpoint(int max_iterations,
                                                          int widen_after) const {
  Solution sol;
  sol.node_output.assign(nodes_.size(), regex::Regex::Nothing());
  std::vector<bool> widened(nodes_.size(), false);

  for (int pass = 0; pass < max_iterations; ++pass) {
    bool changed = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      // Input: union of the seed and every predecessor's output.
      regex::Regex input = n.seed.has_value() ? *n.seed : regex::Regex::Nothing();
      for (int p : n.preds) {
        input = input.Union(sol.node_output[static_cast<size_t>(p)]);
      }
      regex::Regex output = regex::Regex::Nothing();
      if (!input.IsEmptyLanguage()) {
        rtypes::ApplyResult applied = rtypes::Apply(n.type, input);
        output = applied.ok && applied.output.has_value() ? *applied.output
                                                          : regex::Regex::AnyLine();
      }
      // Monotone ascent: never shrink (Kleene iteration over the union
      // lattice).
      output = output.Union(sol.node_output[i]);
      if (!output.EquivalentTo(sol.node_output[i])) {
        changed = true;
        if (pass >= widen_after && !widened[i]) {
          // The chain keeps ascending: widen this node to `any`.
          output = regex::Regex::AnyLine();
          widened[i] = true;
          sol.widened.push_back(static_cast<int>(i));
        }
        sol.node_output[i] = std::move(output);
      }
    }
    ++sol.iterations;
    if (!changed) {
      sol.converged = true;
      break;
    }
  }
  return sol;
}

}  // namespace sash::stream
