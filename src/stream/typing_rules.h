// Typing judgments for stream-processing commands: given a concrete
// invocation (grep '^desc', sed 's/^/0x/', sort -g, ...) produce its
// CommandType. Commands with no rule are *untyped* — the gradual boundary
// where the runtime monitor takes over (§4).
#ifndef SASH_STREAM_TYPING_RULES_H_
#define SASH_STREAM_TYPING_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "rtypes/types.h"
#include "syntax/ast.h"

namespace sash::stream {

// Derives the type of a simple command from its static argv. Returns nullopt
// when the command is unknown, its arguments are dynamic, or no rule applies.
std::optional<rtypes::CommandType> TypeOfCommand(const std::vector<std::string>& argv,
                                                 const rtypes::TypeLibrary& lib);

// Convenience: extracts static argv from the AST (nullopt when any word is
// dynamic) and applies TypeOfCommand.
std::optional<rtypes::CommandType> TypeOfSimpleCommand(const syntax::Command& cmd,
                                                       const rtypes::TypeLibrary& lib);

// Exposed for tests: parses the restricted sed substitution forms the rules
// understand: s/^/TEXT/ (prefix insert) and s/$/TEXT/ (suffix append).
std::optional<rtypes::CommandType> TypeOfSedScript(const std::string& script);

}  // namespace sash::stream

#endif  // SASH_STREAM_TYPING_RULES_H_
