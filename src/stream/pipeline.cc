#include "stream/pipeline.h"

#include "stream/typing_rules.h"

namespace sash::stream {

std::optional<rtypes::CommandType> PipelineChecker::TypeOfStage(
    const syntax::Command& cmd) const {
  if (cmd.kind == syntax::CommandKind::kSimple && !cmd.simple.words.empty()) {
    std::string name;
    if (cmd.simple.words[0].IsStatic(&name)) {
      for (const auto& [override_name, type] : overrides_) {
        if (override_name == name) {
          return type;
        }
      }
    }
  }
  return TypeOfSimpleCommand(cmd, lib_);
}

PipelineReport PipelineChecker::Check(const syntax::Command& cmd, regex::Regex input) const {
  PipelineReport report;
  std::vector<const syntax::Command*> stages;
  if (cmd.kind == syntax::CommandKind::kPipeline) {
    for (const syntax::CommandPtr& c : cmd.pipeline.commands) {
      stages.push_back(c);
    }
  } else {
    stages.push_back(&cmd);
  }

  regex::Regex current = std::move(input);
  bool stream_known = true;  // False after an untyped stage.
  for (size_t i = 0; i < stages.size(); ++i) {
    StageReport stage;
    stage.command = syntax::ToShellSyntax(*stages[i]);
    std::optional<rtypes::CommandType> type = TypeOfStage(*stages[i]);
    if (!type.has_value()) {
      stage.untyped = true;
      if (stages_untyped_ != nullptr) {
        stages_untyped_->Add(1);
      }
      report.untyped_stages.push_back(static_cast<int>(i));
      current = regex::Regex::AnyLine();  // The stage may emit anything.
      stream_known = false;
      stage.output_pattern = current.pattern();
      stage.output_lang = current;
      report.stages.push_back(std::move(stage));
      continue;
    }
    stage.type_display = type->ToString();
    if (stages_typed_ != nullptr) {
      stages_typed_->Add(1);
    }
    // The stage's declared input expectation: the bound for bounded
    // polymorphic types, the fixed input language for monomorphic ones.
    if (type->polymorphic && type->bound.has_value()) {
      stage.input_expect = *type->bound;
    } else if (!type->polymorphic && !type->intersect_filter.has_value()) {
      stage.input_expect = type->input.Substitute(regex::Regex::AnyLine());
    }
    bool input_was_empty = current.IsEmptyLanguage();
    rtypes::ApplyResult applied = rtypes::Apply(*type, current);
    if (!applied.ok) {
      stage.type_error = true;
      if (type_errors_ != nullptr) {
        type_errors_->Add(1);
      }
      stage.error = applied.error;
      report.has_type_error = true;
      current = regex::Regex::AnyLine();  // Recover to keep checking.
      stream_known = false;
      stage.output_pattern = current.pattern();
      stage.output_lang = current;
      report.stages.push_back(std::move(stage));
      continue;
    }
    current = *applied.output;
    stage.output_pattern = current.pattern();
    stage.output_lang = current;
    // Dead-stream criterion: a *filtering* stage reduced a live stream to
    // the empty language. By-design silence (grep -q) has no filter.
    if (applied.output_empty && !input_was_empty && stream_known &&
        type->intersect_filter.has_value()) {
      stage.killed_stream = true;
      if (dead_streams_ != nullptr) {
        dead_streams_->Add(1);
      }
      if (!report.has_dead_stream) {
        report.has_dead_stream = true;
        report.dead_stage = static_cast<int>(i);
      }
    }
    report.stages.push_back(std::move(stage));
  }
  report.final_output = std::move(current);
  return report;
}

int PipelineChecker::CheckProgram(const syntax::Program& program, DiagnosticSink* sink) const {
  int checked = 0;
  syntax::VisitCommands(program, /*into_substitutions=*/true, [&](const syntax::Command& cmd) {
    if (cmd.kind != syntax::CommandKind::kPipeline || cmd.pipeline.commands.size() < 2) {
      return;
    }
    if (cancel_ != nullptr && cancel_->CheckStep()) {
      return;
    }
    ++checked;
    if (pipelines_checked_ != nullptr) {
      pipelines_checked_->Add(1);
    }
    PipelineReport report = Check(cmd);
    if (report.has_dead_stream && sink != nullptr) {
      const StageReport& stage = report.stages[static_cast<size_t>(report.dead_stage)];
      Diagnostic& d = sink->Emit(
          Severity::kError, kCodeDeadStream, cmd.range,
          "pipeline stage '" + stage.command +
              "' can never produce output: its filter does not intersect the incoming "
              "stream type");
      for (int i = 0; i < report.dead_stage; ++i) {
        const StageReport& prev = report.stages[static_cast<size_t>(i)];
        d.notes.push_back(DiagnosticNote{
            {}, prev.command + " :: " + prev.type_display.value_or("(untyped)")});
      }
      d.notes.push_back(DiagnosticNote{
          {}, stage.command + " :: " + stage.type_display.value_or("(untyped)")});
      d.notes.push_back(DiagnosticNote{{}, "the intersection of the stream and the filter is "
                                           "the empty language"});
    }
    if (report.has_type_error && sink != nullptr) {
      for (const StageReport& stage : report.stages) {
        if (stage.type_error) {
          sink->Emit(Severity::kWarning, kCodeStreamTypeError, cmd.range,
                     "pipeline stage '" + stage.command + "' rejects its input: " + stage.error);
        }
      }
    }
  });
  return checked;
}

}  // namespace sash::stream
