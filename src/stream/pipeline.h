// Pipeline stream-type checking: fold command types over the stages of a
// pipeline, detecting dead streams (Fig. 5: an intersection that empties the
// stream means downstream stages can never see data) and type errors, and
// reporting untyped stages for the monitor to guard.
#ifndef SASH_STREAM_PIPELINE_H_
#define SASH_STREAM_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "rtypes/types.h"
#include "syntax/ast.h"
#include "util/cancel.h"
#include "util/diagnostics.h"

namespace sash::stream {

// Diagnostic codes.
inline constexpr char kCodeDeadStream[] = "SASH-DEAD-STREAM";
inline constexpr char kCodeStreamTypeError[] = "SASH-STREAM-TYPE";

struct StageReport {
  std::string command;                      // Display text of the stage.
  std::optional<std::string> type_display;  // The stage's type, if typed.
  bool untyped = false;
  bool type_error = false;
  std::string error;
  bool killed_stream = false;  // Nonempty input ∩ filter became empty here.
  std::string output_pattern;  // Line language leaving this stage.
  std::optional<regex::Regex> output_lang;   // Same, as a language.
  std::optional<regex::Regex> input_expect;  // Declared input expectation.
};

struct PipelineReport {
  std::vector<StageReport> stages;
  std::optional<regex::Regex> final_output;
  bool has_dead_stream = false;
  int dead_stage = -1;  // First stage that killed the stream.
  bool has_type_error = false;
  std::vector<int> untyped_stages;  // Candidates for runtime monitoring.
};

class PipelineChecker {
 public:
  explicit PipelineChecker(rtypes::TypeLibrary lib = rtypes::TypeLibrary::Default())
      : lib_(std::move(lib)) {}

  // Registers a user-declared command type (from annotations); overrides the
  // built-in typing rules for that command name.
  void AddCommandType(std::string command, rtypes::CommandType type) {
    overrides_.emplace_back(std::move(command), std::move(type));
  }

  // Optional observability: typing-rule hit counts ("stream.*") land here.
  // Handles are resolved once here, not per stage — Check runs on every
  // pipeline of every script in a batch.
  void set_metrics(obs::Registry* metrics) {
    metrics_ = metrics;
    if (metrics != nullptr) {
      stages_typed_ = metrics->counter("stream.stages_typed");
      stages_untyped_ = metrics->counter("stream.stages_untyped");
      type_errors_ = metrics->counter("stream.type_errors");
      dead_streams_ = metrics->counter("stream.dead_streams");
      pipelines_checked_ = metrics->counter("stream.pipelines_checked");
    } else {
      stages_typed_ = nullptr;
      stages_untyped_ = nullptr;
      type_errors_ = nullptr;
      dead_streams_ = nullptr;
      pipelines_checked_ = nullptr;
    }
  }

  // Optional cooperative cancellation: CheckProgram polls the token per
  // pipeline and stops checking once it expires (already-emitted diagnostics
  // stand; the remaining pipelines are simply not checked).
  void set_cancel(util::CancelToken* cancel) { cancel_ = cancel; }

  // Checks one pipeline (or single command) against an input line type.
  PipelineReport Check(const syntax::Command& cmd,
                       regex::Regex input = regex::Regex::AnyLine()) const;

  // Walks a whole program (including command substitutions), checking every
  // multi-stage pipeline and emitting kCodeDeadStream / kCodeStreamTypeError
  // diagnostics into `sink`. Returns the number of pipelines checked.
  int CheckProgram(const syntax::Program& program, DiagnosticSink* sink) const;

  const rtypes::TypeLibrary& library() const { return lib_; }

 private:
  std::optional<rtypes::CommandType> TypeOfStage(const syntax::Command& cmd) const;

  rtypes::TypeLibrary lib_;
  std::vector<std::pair<std::string, rtypes::CommandType>> overrides_;
  obs::Registry* metrics_ = nullptr;
  obs::Counter* stages_typed_ = nullptr;
  obs::Counter* stages_untyped_ = nullptr;
  obs::Counter* type_errors_ = nullptr;
  obs::Counter* dead_streams_ = nullptr;
  obs::Counter* pipelines_checked_ = nullptr;
  util::CancelToken* cancel_ = nullptr;
};

}  // namespace sash::stream

#endif  // SASH_STREAM_PIPELINE_H_
