// Feedback loops and circular dataflow (§4): dataflow graphs whose nodes are
// typed stream transformers and whose edges may form cycles (crawlers,
// indexers, ML feedback loops). Stream invariants are computed with the
// paper's iterative least-fixpoint approach: start from the empty invariant,
// expand until nothing changes, widening to `any` when a chain keeps growing.
#ifndef SASH_STREAM_DATAFLOW_H_
#define SASH_STREAM_DATAFLOW_H_

#include <string>
#include <vector>

#include "rtypes/types.h"

namespace sash::stream {

class DataflowGraph {
 public:
  // Adds a transformer node; returns its id.
  int AddNode(rtypes::CommandType type, std::string label);

  // Data flows from `from`'s output into `to`'s input.
  void AddEdge(int from, int to);

  // Seeds a node's input with an external source language (e.g. the initial
  // file a `cat` at the cycle head reads).
  void Seed(int node, regex::Regex lang);

  int NodeCount() const { return static_cast<int>(nodes_.size()); }
  const std::string& Label(int node) const { return nodes_[static_cast<size_t>(node)].label; }

  struct Solution {
    std::vector<regex::Regex> node_output;  // Least-fixpoint output language.
    int iterations = 0;                     // Passes until stabilization.
    bool converged = false;
    std::vector<int> widened;               // Nodes that required widening.
  };

  // Kleene iteration from ⊥ (the empty language) with equivalence-checked
  // convergence; nodes still changing after `widen_after` passes are widened
  // to the `any` line type so the ascent terminates.
  Solution SolveLeastFixpoint(int max_iterations = 64, int widen_after = 8) const;

 private:
  struct Node {
    rtypes::CommandType type;
    std::string label;
    std::optional<regex::Regex> seed;
    std::vector<int> preds;
  };
  std::vector<Node> nodes_;
};

}  // namespace sash::stream

#endif  // SASH_STREAM_DATAFLOW_H_
