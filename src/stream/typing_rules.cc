#include "stream/typing_rules.h"

#include <map>
#include <set>
#include <unordered_map>

#include "util/intern.h"
#include "util/strings.h"

namespace sash::stream {

namespace {

using rtypes::CommandType;
using rtypes::TypeExpr;

// Minimal flag scan good enough for typing: collects single-letter flags and
// returns positional (non-flag) arguments. Flags with attached values like
// -f2 keep the value in `flag_values`.
struct ScannedArgs {
  std::set<char> flags;
  std::map<char, std::string> flag_values;
  std::vector<std::string> positional;
};

ScannedArgs ScanArgs(const std::vector<std::string>& argv) {
  ScannedArgs out;
  for (size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.size() >= 2 && a[0] == '-' && a != "--") {
      for (size_t k = 1; k < a.size(); ++k) {
        out.flags.insert(a[k]);
        // Attached numeric/value payloads (-f2, -n3, -dX).
        if (k + 1 < a.size() && (a[k] == 'f' || a[k] == 'n' || a[k] == 'c' || a[k] == 'd' ||
                                 a[k] == 'k')) {
          out.flag_values[a[k]] = a.substr(k + 1);
          break;
        }
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

CommandType Identity() {
  CommandType t;
  t.polymorphic = true;
  t.input = TypeExpr::Var();
  t.output = TypeExpr::Var();
  return t;
}

CommandType FixedOutput(regex::Regex out) {
  CommandType t;
  t.input = TypeExpr::Lang(regex::Regex::AnyLine());
  t.output = TypeExpr::Lang(std::move(out));
  return t;
}

std::optional<CommandType> TypeGrep(const ScannedArgs& args) {
  // The pattern is -e's value or the first positional.
  std::string pattern;
  if (auto it = args.flag_values.find('e'); it != args.flag_values.end()) {
    pattern = it->second;
  } else if (!args.positional.empty()) {
    pattern = args.positional[0];
  } else {
    return std::nullopt;
  }
  std::optional<regex::Regex> body =
      args.flags.count('F') > 0
          ? std::optional<regex::Regex>(regex::Regex::Literal(pattern))
          : regex::Regex::FromPattern(pattern);
  std::optional<regex::Regex> search = regex::Regex::FromSearchPattern(
      args.flags.count('F') > 0 ? std::string() : pattern);
  if (args.flags.count('F') > 0) {
    // Fixed string anywhere in the line.
    search = regex::Regex::AnyLine().Concat(*body).Concat(regex::Regex::AnyLine());
  }
  if (!search.has_value()) {
    return std::nullopt;
  }
  if (args.flags.count('c') > 0) {
    return FixedOutput(*regex::Regex::FromPattern("\\d+"));
  }
  if (args.flags.count('q') > 0) {
    return FixedOutput(regex::Regex::Nothing());  // By design: no output.
  }
  if (args.flags.count('o') > 0 && body.has_value()) {
    // Each output line is exactly one match of the pattern body.
    return FixedOutput(*body);
  }
  CommandType t;
  t.input = TypeExpr::Lang(regex::Regex::AnyLine());
  t.intersect_filter = args.flags.count('v') > 0 ? search->Complement() : *search;
  return t;
}

std::optional<CommandType> TypeSort(const ScannedArgs& args) {
  CommandType t = Identity();
  if (args.flags.count('g') > 0 || args.flags.count('n') > 0) {
    // The paper's sort -g bound: every line must parse as a general number —
    // the 0x-hex shape its §4 example feeds in (with arbitrary trailing
    // text, as the paper's 0x[0-9a-f]+.* allows), a full decimal/float, or
    // blank (sort treats blank as 0). Note "0x.*" is NOT within the bound:
    // that is exactly what makes the simple sed type fail and motivates the
    // polymorphic one.
    t.bound = regex::Regex::FromPattern(
        "(0x[0-9a-f]+.*|[-+]?\\d+(\\.\\d+)?(e[-+]?\\d+)?| *)?");
  }
  return t;
}

}  // namespace

std::optional<CommandType> TypeOfSedScript(const std::string& script) {
  // Recognized: s/^/TEXT/  and  s/$/TEXT/ with '/' delimiter and literal TEXT.
  if (script.size() < 5 || script[0] != 's' || script[1] != '/') {
    return std::nullopt;
  }
  std::vector<std::string> parts = Split(script.substr(2), '/');
  if (parts.size() != 3 || !parts[2].empty()) {
    return std::nullopt;
  }
  const std::string& addr = parts[0];
  const std::string& text = parts[1];
  // TEXT must be literal (no regex/backreference metacharacters).
  for (char c : text) {
    if (std::string_view("\\&[]*+?^$|(){}").find(c) != std::string_view::npos) {
      return std::nullopt;
    }
  }
  CommandType t;
  t.polymorphic = true;
  t.input = TypeExpr::Var();
  if (addr == "^") {
    // sed 's/^/0x/' :: ∀α. α → 0xα
    t.output = TypeExpr::Concat({TypeExpr::Prefix(text), TypeExpr::Var()});
    return t;
  }
  if (addr == "$") {
    t.output = TypeExpr::Concat({TypeExpr::Var(), TypeExpr::Prefix(text)});
    return t;
  }
  return std::nullopt;
}

namespace {

// One entry per built-in typing rule; dispatch is a single hash probe on the
// interned command name instead of a chain of string compares.
enum class Rule {
  kIdentity,  // cat, tee, head, tail: sub-multiset of input lines.
  kUniq,
  kSort,
  kGrep,
  kEgrep,
  kFgrep,
  kSed,
  kCut,
  kWc,
  kTr,
  kLsbRelease,
  kLs,
  kEcho,
  kNoOutput,  // true, ':'.
};

const std::unordered_map<util::Symbol, Rule>& RuleIndex() {
  static const auto* index = new std::unordered_map<util::Symbol, Rule>{
      {util::Symbol::Intern("cat"), Rule::kIdentity},
      {util::Symbol::Intern("tee"), Rule::kIdentity},
      {util::Symbol::Intern("head"), Rule::kIdentity},
      {util::Symbol::Intern("tail"), Rule::kIdentity},
      {util::Symbol::Intern("uniq"), Rule::kUniq},
      {util::Symbol::Intern("sort"), Rule::kSort},
      {util::Symbol::Intern("grep"), Rule::kGrep},
      {util::Symbol::Intern("egrep"), Rule::kEgrep},
      {util::Symbol::Intern("fgrep"), Rule::kFgrep},
      {util::Symbol::Intern("sed"), Rule::kSed},
      {util::Symbol::Intern("cut"), Rule::kCut},
      {util::Symbol::Intern("wc"), Rule::kWc},
      {util::Symbol::Intern("tr"), Rule::kTr},
      {util::Symbol::Intern("lsb_release"), Rule::kLsbRelease},
      {util::Symbol::Intern("ls"), Rule::kLs},
      {util::Symbol::Intern("echo"), Rule::kEcho},
      {util::Symbol::Intern("true"), Rule::kNoOutput},
      {util::Symbol::Intern(":"), Rule::kNoOutput},
  };
  return *index;
}

}  // namespace

std::optional<CommandType> TypeOfCommand(const std::vector<std::string>& argv,
                                         const rtypes::TypeLibrary& lib) {
  if (argv.empty()) {
    return std::nullopt;
  }
  const std::string& name = argv[0];
  // Build the index before the non-inserting lookup: RuleIndex() interns the
  // rule names, after which a Find() miss proves the command is untyped —
  // and probing arbitrary command names never grows the interner.
  const auto& index = RuleIndex();
  auto name_sym = util::Symbol::Find(name);
  if (!name_sym.has_value()) {
    return std::nullopt;
  }
  auto rule = index.find(*name_sym);
  if (rule == index.end()) {
    return std::nullopt;  // Untyped: gradual boundary.
  }
  ScannedArgs args = ScanArgs(argv);

  switch (rule->second) {
    case Rule::kIdentity:
      return Identity();
    case Rule::kUniq:
      break;
    case Rule::kSort:
      return TypeSort(args);
    case Rule::kGrep:
      return TypeGrep(args);
    case Rule::kEgrep:
      args.flags.insert('E');
      return TypeGrep(args);
    case Rule::kFgrep:
      args.flags.insert('F');
      return TypeGrep(args);
    case Rule::kSed: {
      std::vector<std::string> scripts;
      if (auto it = args.flag_values.find('e'); it != args.flag_values.end()) {
        scripts.push_back(it->second);
      } else if (!args.positional.empty()) {
        scripts.push_back(args.positional[0]);
      }
      if (scripts.size() == 1) {
        return TypeOfSedScript(scripts[0]);
      }
      return std::nullopt;
    }
    case Rule::kCut: {
      // Output: one field — no tabs (or no delimiter chars) inside.
      std::string delim = "\t";
      if (auto it = args.flag_values.find('d');
          it != args.flag_values.end() && !it->second.empty()) {
        delim = it->second;
      }
      std::string cls = delim == "\t" ? "\\t" : std::string(1, delim[0]);
      std::optional<regex::Regex> field = regex::Regex::FromPattern("[^" + cls + "\\n]*");
      if (field.has_value()) {
        return FixedOutput(*field);
      }
      return std::nullopt;
    }
    case Rule::kWc:
      return FixedOutput(*regex::Regex::FromPattern(" *\\d+( +\\d+)*( .*)?"));
    case Rule::kTr:
      return FixedOutput(regex::Regex::AnyLine());
    case Rule::kLsbRelease: {
      const regex::Regex* lsb = lib.Find("lsbline");
      if (lsb != nullptr) {
        return FixedOutput(*lsb);
      }
      return std::nullopt;
    }
    case Rule::kLs: {
      if (args.flags.count('l') > 0) {
        const regex::Regex* longlist = lib.Find("longlist");
        if (longlist != nullptr) {
          return FixedOutput(*longlist);
        }
      }
      return FixedOutput(regex::Regex::AnyLine());
    }
    case Rule::kEcho: {
      std::string text = Join(args.positional, " ");
      return FixedOutput(regex::Regex::Literal(text));
    }
    case Rule::kNoOutput:
      return FixedOutput(regex::Regex::Nothing());
  }

  // Rule::kUniq falls through to here.
  {
    if (args.flags.count('c') > 0) {
      // uniq -c :: ∀α. α → " *N α".
      CommandType t;
      t.polymorphic = true;
      t.input = TypeExpr::Var();
      std::optional<regex::Regex> count = regex::Regex::FromPattern(" *\\d+ ");
      t.output = TypeExpr::Concat({TypeExpr::Lang(*count), TypeExpr::Var()});
      return t;
    }
    return Identity();
  }
  return std::nullopt;  // Unreachable; switch covers every rule.
}

std::optional<CommandType> TypeOfSimpleCommand(const syntax::Command& cmd,
                                               const rtypes::TypeLibrary& lib) {
  if (cmd.kind != syntax::CommandKind::kSimple) {
    return std::nullopt;
  }
  std::vector<std::string> argv;
  for (const syntax::Word& w : cmd.simple.words) {
    std::string text;
    if (!w.IsStatic(&text)) {
      return std::nullopt;
    }
    argv.push_back(std::move(text));
  }
  return TypeOfCommand(argv, lib);
}

}  // namespace sash::stream
