#include "exec/commands.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <set>

#include "fs/glob.h"
#include "fs/path.h"
#include "regex/regex.h"
#include "specs/library.h"
#include "util/strings.h"

namespace sash::exec {

namespace {

using specs::Invocation;
using specs::SpecLibrary;

RunResult Fail(int code, std::string err) {
  RunResult r;
  r.exit_code = code;
  r.err = std::move(err);
  return r;
}

std::vector<std::string> InputLines(fs::FileSystem& fs, const Invocation& inv,
                                    const std::string& stdin_data, size_t first_operand,
                                    int* exit_code, std::string* err) {
  std::vector<std::string> lines;
  bool any_file = false;
  for (size_t i = first_operand; i < inv.operands.size(); ++i) {
    any_file = true;
    Result<std::string> content = fs.ReadFile(inv.operands[i]);
    if (!content.ok()) {
      *exit_code = inv.command == "grep" ? 2 : 1;
      *err += inv.command + ": " + content.status().message() + "\n";
      continue;
    }
    for (std::string& line : SplitLines(*content)) {
      lines.push_back(std::move(line));
    }
  }
  if (!any_file) {
    lines = SplitLines(stdin_data);
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// Leftmost-longest scan of `body` matches inside `line` using the DFA.
std::vector<std::pair<size_t, size_t>> FindMatches(const regex::Regex& body,
                                                   const std::string& line) {
  std::vector<std::pair<size_t, size_t>> out;
  const regex::Dfa& dfa = body.dfa();
  size_t pos = 0;
  while (pos <= line.size()) {
    int state = dfa.StartState();
    size_t best = std::string::npos;
    for (size_t i = pos; i <= line.size(); ++i) {
      if (dfa.IsAccepting(state)) {
        best = i;
      }
      if (i == line.size() || dfa.IsDeadState(state)) {
        break;
      }
      state = dfa.Step(state, static_cast<unsigned char>(line[i]));
    }
    // Re-check acceptance after consuming the final character.
    if (best == std::string::npos && dfa.IsAccepting(state)) {
      best = line.size();
    }
    if (best != std::string::npos && best > pos) {
      out.emplace_back(pos, best);
      pos = best;
    } else {
      ++pos;
    }
  }
  return out;
}

// ---------------- individual commands ----------------

RunResult CmdEcho(const Invocation& inv) {
  RunResult r;
  r.out = Join(inv.operands, " ");
  if (!inv.HasFlag('n')) {
    r.out += '\n';
  }
  return r;
}

RunResult CmdCat(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::vector<std::string> pieces;
  if (inv.operands.empty()) {
    pieces.push_back(stdin_data);
  } else {
    for (const std::string& path : inv.operands) {
      if (fs.IsDir(path)) {
        r.exit_code = 1;
        r.err += "cat: " + path + ": Is a directory\n";
        continue;
      }
      Result<std::string> content = fs.ReadFile(path);
      if (!content.ok()) {
        r.exit_code = 1;
        r.err += "cat: " + content.status().message() + "\n";
        continue;
      }
      pieces.push_back(*content);
    }
  }
  std::string joined;
  for (const std::string& p : pieces) {
    joined += p;
  }
  if (inv.HasFlag('n')) {
    std::string numbered;
    int n = 1;
    for (const std::string& line : SplitLines(joined)) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%6d\t", n++);
      numbered += buf;
      numbered += line;
      numbered += '\n';
    }
    r.out = std::move(numbered);
  } else {
    r.out = std::move(joined);
  }
  return r;
}

RunResult CmdRm(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  const bool recursive = inv.HasFlag('r') || inv.HasFlag('R');
  const bool force = inv.HasFlag('f');
  for (const std::string& path : inv.operands) {
    Status s = fs.Remove(path, recursive, force);
    if (!s.ok()) {
      r.exit_code = 1;
      r.err += "rm: cannot remove '" + path + "': " + s.message() + "\n";
    }
  }
  return r;
}

RunResult CmdRmdir(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  for (const std::string& path : inv.operands) {
    Status s = fs.RemoveEmptyDir(path);
    if (!s.ok()) {
      r.exit_code = 1;
      r.err += "rmdir: failed to remove '" + path + "': " + s.message() + "\n";
    }
  }
  return r;
}

RunResult CmdMkdir(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  for (const std::string& path : inv.operands) {
    Status s = fs.MakeDir(path, inv.HasFlag('p'));
    if (!s.ok()) {
      r.exit_code = 1;
      r.err += "mkdir: cannot create directory '" + path + "': " + s.message() + "\n";
    }
  }
  return r;
}

RunResult CmdTouch(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  for (const std::string& path : inv.operands) {
    if (inv.HasFlag('c') && !fs.Exists(path)) {
      continue;
    }
    Status s = fs.Touch(path);
    if (!s.ok()) {
      r.exit_code = 1;
      r.err += "touch: cannot touch '" + path + "': " + s.message() + "\n";
    }
  }
  return r;
}

Status CopyTree(fs::FileSystem& fs, const std::string& src, const std::string& dst) {
  if (fs.IsDir(src)) {
    Status s = fs.MakeDir(dst, /*parents=*/true);
    if (!s.ok()) {
      return s;
    }
    Result<std::vector<std::string>> entries = fs.ListDir(src);
    if (!entries.ok()) {
      return entries.status();
    }
    for (const std::string& name : *entries) {
      Status child = CopyTree(fs, fs::JoinPath(src, name), fs::JoinPath(dst, name));
      if (!child.ok()) {
        return child;
      }
    }
    return Status::Ok();
  }
  Result<std::string> content = fs.ReadFile(src);
  if (!content.ok()) {
    return content.status();
  }
  return fs.WriteFile(dst, *content);
}

RunResult CmdCp(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  const bool recursive = inv.HasFlag('r') || inv.HasFlag('R');
  const std::string& dst = inv.operands.back();
  for (size_t i = 0; i + 1 < inv.operands.size(); ++i) {
    const std::string& src = inv.operands[i];
    if (fs.IsDir(src)) {
      if (!recursive) {
        r.exit_code = 1;
        r.err += "cp: -r not specified; omitting directory '" + src + "'\n";
        continue;
      }
      std::string target = fs.IsDir(dst) ? fs::JoinPath(dst, fs::BaseName(src)) : dst;
      Status s = CopyTree(fs, src, target);
      if (!s.ok()) {
        r.exit_code = 1;
        r.err += "cp: " + s.message() + "\n";
      }
      continue;
    }
    Status s = fs.CopyFile(src, dst);
    if (!s.ok()) {
      r.exit_code = 1;
      r.err += "cp: cannot copy '" + src + "': " + s.message() + "\n";
    }
  }
  return r;
}

RunResult CmdMv(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  const std::string& dst = inv.operands.back();
  for (size_t i = 0; i + 1 < inv.operands.size(); ++i) {
    if (fs.IsDir(inv.operands[i]) && fs.Exists(dst) && !fs.IsDir(dst)) {
      r.exit_code = 1;
      r.err += "mv: cannot overwrite non-directory '" + dst + "' with directory '" +
               inv.operands[i] + "'\n";
      continue;
    }
    Status s = fs.Rename(inv.operands[i], dst);
    if (!s.ok()) {
      r.exit_code = 1;
      r.err += "mv: cannot move '" + inv.operands[i] + "': " + s.message() + "\n";
    }
  }
  return r;
}

RunResult CmdLs(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  std::vector<std::string> targets = inv.operands;
  if (targets.empty()) {
    targets.push_back(fs.cwd());
  }
  auto render = [&](const std::string& name, const std::string& full) {
    if (!inv.HasFlag('l')) {
      r.out += name + "\n";
      return;
    }
    bool is_dir = fs.IsDir(full);
    size_t size = 0;
    if (fs.IsFile(full)) {
      size = fs.ReadFile(full)->size();
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s 1 user user %zu Jul  1 12:00 %s\n",
                  is_dir ? "drwxr-xr-x" : "-rw-r--r--", size, name.c_str());
    r.out += buf;
  };
  for (const std::string& path : targets) {
    if (fs.IsDir(path) && !inv.HasFlag('d')) {
      Result<std::vector<std::string>> entries = fs.ListDir(path);
      if (!entries.ok()) {
        r.exit_code = 2;
        r.err += "ls: cannot access '" + path + "': " + entries.status().message() + "\n";
        continue;
      }
      for (const std::string& name : *entries) {
        if (!inv.HasFlag('a') && !name.empty() && name[0] == '.') {
          continue;
        }
        render(name, fs::JoinPath(path, name));
      }
    } else if (fs.Exists(path)) {
      render(path, path);
    } else {
      r.exit_code = 2;
      r.err += "ls: cannot access '" + path + "': No such file or directory\n";
    }
  }
  return r;
}

RunResult CmdRealpath(fs::FileSystem& fs, const Invocation& inv) {
  RunResult r;
  for (const std::string& path : inv.operands) {
    if (inv.HasFlag('m')) {
      r.out += fs::Absolutize(path, fs.cwd()) + "\n";
      continue;
    }
    Result<std::string> real = fs.RealPath(path);
    if (!real.ok()) {
      r.exit_code = 1;
      r.err += "realpath: " + real.status().message() + "\n";
      continue;
    }
    r.out += *real + "\n";
  }
  return r;
}

RunResult CmdGrep(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::string pattern;
  size_t first_file = 0;
  if (std::optional<std::string> e = inv.FlagArg('e'); e.has_value()) {
    pattern = *e;
  } else if (!inv.operands.empty()) {
    pattern = inv.operands[0];
    first_file = 1;
  } else {
    return Fail(2, "grep: missing pattern\n");
  }
  if (inv.HasFlag('i')) {
    pattern = AsciiLower(pattern);
  }
  std::optional<regex::Regex> body;
  std::optional<regex::Regex> search;
  if (inv.HasFlag('F')) {
    body = regex::Regex::Literal(pattern);
    search = regex::Regex::AnyLine().Concat(*body).Concat(regex::Regex::AnyLine());
  } else {
    std::string err;
    body = regex::Regex::FromPattern(pattern, &err);
    search = regex::Regex::FromSearchPattern(pattern, &err);
    if (!body.has_value() || !search.has_value()) {
      return Fail(2, "grep: invalid pattern: " + err + "\n");
    }
  }
  std::vector<std::string> lines = InputLines(fs, inv, stdin_data, first_file, &r.exit_code,
                                              &r.err);
  if (r.exit_code == 2) {
    return r;
  }
  int matches = 0;
  int lineno = 0;
  for (const std::string& raw : lines) {
    ++lineno;
    std::string line = inv.HasFlag('i') ? AsciiLower(raw) : raw;
    bool hit = search->Matches(line);
    if (inv.HasFlag('v')) {
      hit = !hit;
    }
    if (!hit) {
      continue;
    }
    ++matches;
    if (inv.HasFlag('q') || inv.HasFlag('c')) {
      continue;
    }
    if (inv.HasFlag('o') && !inv.HasFlag('v')) {
      for (const auto& [begin, end] : FindMatches(*body, line)) {
        if (inv.HasFlag('n')) {
          r.out += std::to_string(lineno) + ":";
        }
        r.out += raw.substr(begin, end - begin) + "\n";
      }
      continue;
    }
    if (inv.HasFlag('n')) {
      r.out += std::to_string(lineno) + ":";
    }
    r.out += raw + "\n";
  }
  if (inv.HasFlag('c')) {
    r.out = std::to_string(matches) + "\n";
  }
  if (r.exit_code == 0) {
    r.exit_code = matches > 0 ? 0 : 1;
  }
  return r;
}

RunResult CmdSed(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::string script;
  size_t first_file = 0;
  if (std::optional<std::string> e = inv.FlagArg('e'); e.has_value()) {
    script = *e;
  } else if (!inv.operands.empty()) {
    script = inv.operands[0];
    first_file = 1;
  } else {
    return Fail(2, "sed: missing script\n");
  }
  // Supported: s/RE/REPL/[g] with '/' delimiter; REPL is literal.
  if (script.size() < 4 || script[0] != 's' || script[1] != '/') {
    return Fail(2, "sed: unsupported script: " + script + "\n");
  }
  std::vector<std::string> parts = Split(script.substr(2), '/');
  if (parts.size() < 2) {
    return Fail(2, "sed: unterminated `s' command\n");
  }
  const std::string& re_text = parts[0];
  const std::string& repl = parts[1];
  const bool global = parts.size() > 2 && parts[2] == "g";
  std::vector<std::string> lines = InputLines(fs, inv, stdin_data, first_file, &r.exit_code,
                                              &r.err);
  // Anchor handling: ^ inserts at start, $ appends at end.
  if (re_text == "^") {
    for (std::string& line : lines) {
      line = repl + line;
    }
  } else if (re_text == "$") {
    for (std::string& line : lines) {
      line += repl;
    }
  } else {
    std::string err;
    std::optional<regex::Regex> body = regex::Regex::FromPattern(re_text, &err);
    if (!body.has_value()) {
      return Fail(2, "sed: invalid expression: " + err + "\n");
    }
    for (std::string& line : lines) {
      std::string rebuilt;
      size_t consumed = 0;
      for (const auto& [begin, end] : FindMatches(*body, line)) {
        if (begin < consumed) {
          continue;
        }
        rebuilt += line.substr(consumed, begin - consumed);
        rebuilt += repl;
        consumed = end;
        if (!global) {
          break;
        }
      }
      rebuilt += line.substr(consumed);
      line = std::move(rebuilt);
    }
  }
  r.out = JoinLines(lines);
  return r;
}

// Parses cut-style LIST: "2", "1,3", "2-4", "3-".
std::vector<std::pair<int, int>> ParseRanges(const std::string& list) {
  std::vector<std::pair<int, int>> out;
  for (const std::string& piece : Split(list, ',')) {
    size_t dash = piece.find('-');
    if (dash == std::string::npos) {
      int v = std::atoi(piece.c_str());
      out.emplace_back(v, v);
    } else {
      int lo = dash == 0 ? 1 : std::atoi(piece.substr(0, dash).c_str());
      int hi = dash + 1 >= piece.size() ? 1 << 30 : std::atoi(piece.substr(dash + 1).c_str());
      out.emplace_back(lo, hi);
    }
  }
  return out;
}

bool InRanges(const std::vector<std::pair<int, int>>& ranges, int v) {
  for (const auto& [lo, hi] : ranges) {
    if (v >= lo && v <= hi) {
      return true;
    }
  }
  return false;
}

RunResult CmdCut(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::vector<std::string> lines = InputLines(fs, inv, stdin_data, 0, &r.exit_code, &r.err);
  if (std::optional<std::string> fields = inv.FlagArg('f'); fields.has_value()) {
    char delim = '\t';
    if (std::optional<std::string> d = inv.FlagArg('d'); d.has_value() && !d->empty()) {
      delim = (*d)[0];
    }
    std::vector<std::pair<int, int>> ranges = ParseRanges(*fields);
    for (const std::string& line : lines) {
      if (line.find(delim) == std::string::npos) {
        r.out += line + "\n";  // POSIX: lines without the delimiter pass through.
        continue;
      }
      std::vector<std::string> cols = Split(line, delim);
      std::vector<std::string> picked;
      for (int i = 0; i < static_cast<int>(cols.size()); ++i) {
        if (InRanges(ranges, i + 1)) {
          picked.push_back(cols[static_cast<size_t>(i)]);
        }
      }
      r.out += Join(picked, std::string(1, delim)) + "\n";
    }
    return r;
  }
  if (std::optional<std::string> chars = inv.FlagArg('c'); chars.has_value()) {
    std::vector<std::pair<int, int>> ranges = ParseRanges(*chars);
    for (const std::string& line : lines) {
      std::string picked;
      for (int i = 0; i < static_cast<int>(line.size()); ++i) {
        if (InRanges(ranges, i + 1)) {
          picked += line[static_cast<size_t>(i)];
        }
      }
      r.out += picked + "\n";
    }
    return r;
  }
  return Fail(2, "cut: you must specify a list of fields or characters\n");
}

RunResult CmdSort(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::vector<std::string> lines = InputLines(fs, inv, stdin_data, 0, &r.exit_code, &r.err);
  const bool numeric = inv.HasFlag('n') || inv.HasFlag('g');
  if (numeric) {
    std::stable_sort(lines.begin(), lines.end(), [](const std::string& a, const std::string& b) {
      return std::strtod(a.c_str(), nullptr) < std::strtod(b.c_str(), nullptr);
    });
  } else {
    std::stable_sort(lines.begin(), lines.end());
  }
  if (inv.HasFlag('r')) {
    std::reverse(lines.begin(), lines.end());
  }
  if (inv.HasFlag('u')) {
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  }
  r.out = JoinLines(lines);
  return r;
}

RunResult CmdHeadTail(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data,
                      bool head) {
  RunResult r;
  std::vector<std::string> lines = InputLines(fs, inv, stdin_data, 0, &r.exit_code, &r.err);
  size_t n = 10;
  if (std::optional<std::string> arg = inv.FlagArg('n'); arg.has_value()) {
    n = static_cast<size_t>(std::atol(arg->c_str()));
  }
  std::vector<std::string> picked;
  if (head) {
    for (size_t i = 0; i < lines.size() && i < n; ++i) {
      picked.push_back(lines[i]);
    }
  } else {
    size_t start = lines.size() > n ? lines.size() - n : 0;
    for (size_t i = start; i < lines.size(); ++i) {
      picked.push_back(lines[i]);
    }
  }
  r.out = JoinLines(picked);
  return r;
}

// Expands tr sets: "a-z0-9" and escapes \n \t \\.
std::string ExpandTrSet(const std::string& set) {
  std::string out;
  for (size_t i = 0; i < set.size(); ++i) {
    char c = set[i];
    if (c == '\\' && i + 1 < set.size()) {
      char e = set[++i];
      out += e == 'n' ? '\n' : e == 't' ? '\t' : e;
      continue;
    }
    if (i + 2 < set.size() && set[i + 1] == '-' && set[i + 2] >= c) {
      for (char k = c; k <= set[i + 2]; ++k) {
        out += k;
      }
      i += 2;
      continue;
    }
    out += c;
  }
  return out;
}

RunResult CmdTr(const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  if (inv.operands.empty()) {
    return Fail(1, "tr: missing operand\n");
  }
  std::string set1 = ExpandTrSet(inv.operands[0]);
  if (inv.HasFlag('d')) {
    for (char c : stdin_data) {
      if (set1.find(c) == std::string::npos) {
        r.out += c;
      }
    }
    return r;
  }
  if (inv.operands.size() < 2) {
    return Fail(1, "tr: missing operand after '" + inv.operands[0] + "'\n");
  }
  std::string set2 = ExpandTrSet(inv.operands[1]);
  for (char c : stdin_data) {
    size_t pos = set1.find(c);
    if (pos != std::string::npos && !set2.empty()) {
      r.out += set2[std::min(pos, set2.size() - 1)];
    } else {
      r.out += c;
    }
  }
  return r;
}

RunResult CmdUniq(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::vector<std::string> lines = InputLines(fs, inv, stdin_data, 0, &r.exit_code, &r.err);
  std::string prev;
  bool have_prev = false;
  int count = 0;
  auto flush = [&] {
    if (!have_prev) {
      return;
    }
    if (inv.HasFlag('d') && count < 2) {
      return;
    }
    if (inv.HasFlag('c')) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%7d ", count);
      r.out += buf;
    }
    r.out += prev + "\n";
  };
  for (const std::string& line : lines) {
    if (have_prev && line == prev) {
      ++count;
      continue;
    }
    flush();
    prev = line;
    have_prev = true;
    count = 1;
  }
  flush();
  return r;
}

RunResult CmdWc(fs::FileSystem& fs, const Invocation& inv, const std::string& stdin_data) {
  RunResult r;
  std::string data;
  if (inv.operands.empty()) {
    data = stdin_data;
  } else {
    for (const std::string& path : inv.operands) {
      Result<std::string> content = fs.ReadFile(path);
      if (!content.ok()) {
        r.exit_code = 1;
        r.err += "wc: " + content.status().message() + "\n";
        continue;
      }
      data += *content;
    }
  }
  size_t lines = 0;
  size_t words = 0;
  size_t bytes = data.size();
  bool in_word = false;
  for (char c : data) {
    if (c == '\n') {
      ++lines;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_word = false;
    } else if (!in_word) {
      in_word = true;
      ++words;
    }
  }
  const bool want_l = inv.HasFlag('l');
  const bool want_w = inv.HasFlag('w');
  const bool want_c = inv.HasFlag('c');
  const bool all = !want_l && !want_w && !want_c;
  std::vector<std::string> cols;
  if (all || want_l) {
    cols.push_back(std::to_string(lines));
  }
  if (all || want_w) {
    cols.push_back(std::to_string(words));
  }
  if (all || want_c) {
    cols.push_back(std::to_string(bytes));
  }
  r.out = " " + Join(cols, " ") + "\n";
  return r;
}

RunResult CmdLsbRelease(const Invocation& inv, const World& world) {
  RunResult r;
  const bool short_form = inv.HasFlag('s');
  auto emit = [&](const char* label, const std::string& value) {
    if (short_form) {
      r.out += value + "\n";
    } else {
      r.out += std::string(label) + ":\t" + value + "\n";
    }
  };
  bool any = false;
  if (inv.HasFlag('a') || inv.HasFlag('i')) {
    emit("Distributor ID", world.distributor_id);
    any = true;
  }
  if (inv.HasFlag('a') || inv.HasFlag('d')) {
    emit("Description", world.description);
    any = true;
  }
  if (inv.HasFlag('a') || inv.HasFlag('r')) {
    emit("Release", world.release);
    any = true;
  }
  if (inv.HasFlag('a') || inv.HasFlag('c')) {
    emit("Codename", world.codename);
    any = true;
  }
  if (!any) {
    emit("Distributor ID", world.distributor_id);
  }
  return r;
}

RunResult CmdCurl(fs::FileSystem& fs, const Invocation& inv, const World& world) {
  RunResult r;
  for (const std::string& url : inv.operands) {
    auto it = world.remote.find(url);
    if (it == world.remote.end()) {
      r.exit_code = 6;
      if (!inv.HasFlag('s')) {
        r.err += "curl: (6) Could not resolve host: " + url + "\n";
      }
      continue;
    }
    if (std::optional<std::string> out_file = inv.FlagArg('o'); out_file.has_value()) {
      Status s = fs.WriteFile(*out_file, it->second);
      if (!s.ok()) {
        r.exit_code = 23;
        r.err += "curl: (23) " + s.message() + "\n";
      }
    } else {
      r.out += it->second;
    }
  }
  return r;
}

}  // namespace

RunResult RunCommand(fs::FileSystem& fs, const std::vector<std::string>& argv,
                     const std::string& stdin_data, const World& world) {
  if (argv.empty()) {
    return Fail(127, "sh: empty command\n");
  }
  const std::string& name = argv[0];
  if (!HasCommand(name)) {
    return Fail(127, "sh: " + name + ": command not found\n");
  }

  // Simple commands that need no spec-parsed invocation.
  if (name == "pwd") {
    RunResult r;
    r.out = fs.cwd() + "\n";
    return r;
  }
  if (name == "true" || name == ":") {
    return RunResult{};
  }
  if (name == "false") {
    return Fail(1, "");
  }
  if (name == "uname") {
    RunResult r;
    r.out = "Linux\n";
    return r;
  }
  if (name == "date") {
    RunResult r;
    r.out = "Mon Jul  6 12:00:00 UTC 2026\n";
    return r;
  }
  if (name == "sleep") {
    return RunResult{};  // Time is not modeled.
  }
  if (name == "basename" || name == "dirname") {
    if (argv.size() < 2) {
      return Fail(1, name + ": missing operand\n");
    }
    RunResult r;
    r.out = (name == "basename" ? fs::BaseName(argv[1]) : fs::DirName(argv[1])) + "\n";
    return r;
  }

  const specs::CommandSpec* spec = SpecLibrary::BuiltinGroundTruth().Find(name);
  if (spec == nullptr) {
    return Fail(127, "sh: " + name + ": command not found\n");
  }
  Result<Invocation> inv = specs::ParseInvocation(
      spec->syntax, std::vector<std::string>(argv.begin() + 1, argv.end()));
  if (!inv.ok()) {
    return Fail(2, name + ": " + inv.status().message() + "\n");
  }

  if (name == "echo") {
    return CmdEcho(*inv);
  }
  if (name == "cat") {
    return CmdCat(fs, *inv, stdin_data);
  }
  if (name == "rm") {
    return CmdRm(fs, *inv);
  }
  if (name == "rmdir") {
    return CmdRmdir(fs, *inv);
  }
  if (name == "mkdir") {
    return CmdMkdir(fs, *inv);
  }
  if (name == "touch") {
    return CmdTouch(fs, *inv);
  }
  if (name == "cp") {
    return CmdCp(fs, *inv);
  }
  if (name == "mv") {
    return CmdMv(fs, *inv);
  }
  if (name == "ls") {
    return CmdLs(fs, *inv);
  }
  if (name == "realpath") {
    return CmdRealpath(fs, *inv);
  }
  if (name == "grep") {
    return CmdGrep(fs, *inv, stdin_data);
  }
  if (name == "sed") {
    return CmdSed(fs, *inv, stdin_data);
  }
  if (name == "cut") {
    return CmdCut(fs, *inv, stdin_data);
  }
  if (name == "sort") {
    return CmdSort(fs, *inv, stdin_data);
  }
  if (name == "head") {
    return CmdHeadTail(fs, *inv, stdin_data, /*head=*/true);
  }
  if (name == "tail") {
    return CmdHeadTail(fs, *inv, stdin_data, /*head=*/false);
  }
  if (name == "tr") {
    return CmdTr(*inv, stdin_data);
  }
  if (name == "uniq") {
    return CmdUniq(fs, *inv, stdin_data);
  }
  if (name == "wc") {
    return CmdWc(fs, *inv, stdin_data);
  }
  if (name == "lsb_release") {
    return CmdLsbRelease(*inv, world);
  }
  if (name == "curl") {
    return CmdCurl(fs, *inv, world);
  }
  return Fail(127, "sh: " + name + ": command not found\n");
}

bool HasCommand(const std::string& name) {
  static const std::set<std::string> kExtra = {"pwd",  "true", ":",        "false",
                                               "uname", "date", "sleep",   "basename",
                                               "dirname"};
  if (kExtra.count(name) > 0) {
    return true;
  }
  static const std::set<std::string> kModeled = {
      "echo", "cat",  "rm",   "rmdir", "mkdir", "touch", "cp",   "mv",
      "ls",   "realpath", "grep", "sed", "cut", "sort",  "head", "tail",
      "tr",   "uniq", "wc",   "lsb_release", "curl"};
  return kModeled.count(name) > 0;
}

std::vector<std::string> CommandNames() {
  std::vector<std::string> out = {
      "basename", "cat",  "cp",    "curl",  "cut",   "date",  "dirname", "echo",
      "false",    "grep", "head",  "ls",    "lsb_release", "mkdir", "mv", "pwd",
      "realpath", "rm",   "rmdir", "sed",   "sleep", "sort",  "tail",    "touch",
      "tr",       "true", "uname", "uniq",  "wc"};
  return out;
}

}  // namespace sash::exec
