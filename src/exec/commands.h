// Concrete, executable models of the core Unix utilities, operating on the
// in-memory FileSystem and string-based standard streams. These stand in for
// the real binaries in two places:
//   - the Fig. 4 prober executes them under interposition to *observe* their
//     effects and compile specifications;
//   - the runtime monitor executes guarded pipelines with them.
// Behavior follows POSIX for the modeled flag subset; exit codes match the
// ground-truth specification library.
#ifndef SASH_EXEC_COMMANDS_H_
#define SASH_EXEC_COMMANDS_H_

#include <map>
#include <string>
#include <vector>

#include "fs/filesystem.h"

namespace sash::exec {

struct RunResult {
  int exit_code = 0;
  std::string out;  // Standard output.
  std::string err;  // Standard error.
};

// Configuration injected into command models that would otherwise reach
// outside the sandbox.
struct World {
  // lsb_release output fields.
  std::string distributor_id = "Debian";
  std::string description = "Debian GNU/Linux 12 (bookworm)";
  std::string release = "12";
  std::string codename = "bookworm";
  // curl's view of the network: url -> body ("" + missing = exit 6).
  std::map<std::string, std::string> remote;
};

// Executes `argv` (argv[0] is the command name) with `stdin_data` against
// `fs`. Unknown commands return exit 127 with a shell-style error.
RunResult RunCommand(fs::FileSystem& fs, const std::vector<std::string>& argv,
                     const std::string& stdin_data = "", const World& world = World());

// True when a model exists for `name`.
bool HasCommand(const std::string& name);

// Names of all modeled commands (sorted).
std::vector<std::string> CommandNames();

}  // namespace sash::exec

#endif  // SASH_EXEC_COMMANDS_H_
