// The queryable specification library that accompanies the analysis engine
// (§3: "build a queryable specification library"). Ships with hand-written
// ground-truth specs for the core utility set; the mining pipeline
// (sash::mining) produces specs of the same shape and is validated against
// these.
//
// Concurrency: lookups are wait-free. The symbol index is an immutable
// snapshot published through an atomic pointer; Register copies the current
// snapshot, inserts, and release-publishes the successor, retiring (not
// freeing) the outgrown one so readers still probing it stay safe. That
// makes concurrent Register/Find well-defined — a batch pool can keep
// dispatching on the library while mined specs stream in — at a cost paid
// only by the rare writer (specs are registered once each, reads happen per
// command per script).
#ifndef SASH_SPECS_LIBRARY_H_
#define SASH_SPECS_LIBRARY_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "specs/hoare.h"
#include "util/intern.h"

namespace sash::specs {

class SpecLibrary {
 public:
  SpecLibrary() = default;
  // Moves transfer the spec store and the published snapshot. They are not
  // concurrency-safe (nothing may be reading or registering mid-move) —
  // moves happen while a library is being built, before it is shared.
  SpecLibrary(SpecLibrary&& other) noexcept;
  SpecLibrary& operator=(SpecLibrary&& other) noexcept;
  SpecLibrary(const SpecLibrary&) = delete;
  SpecLibrary& operator=(const SpecLibrary&) = delete;

  // Registering the same command twice aborts (always, not just in debug
  // builds): a duplicate used to silently shadow the earlier spec, which is
  // a corpus bug that must not pass unnoticed. Thread-safe, including
  // against concurrent Find.
  void Register(CommandSpec spec);

  // Dispatch is one hash probe on the interned command name, against the
  // current index snapshot — no lock, no reference count. The string
  // overload uses a non-inserting symbol lookup, so probing arbitrary
  // runtime command names never grows the interner.
  const CommandSpec* Find(util::Symbol command) const {
    const Index* idx = index_.load(std::memory_order_acquire);
    if (idx == nullptr) {
      return nullptr;
    }
    auto it = idx->find(command);
    return it == idx->end() ? nullptr : it->second;
  }
  const CommandSpec* Find(const std::string& command) const {
    auto sym = util::Symbol::Find(command);
    return sym.has_value() ? Find(*sym) : nullptr;
  }
  bool Has(const std::string& command) const { return Find(command) != nullptr; }
  std::vector<std::string> CommandNames() const;  // Sorted.
  size_t size() const {
    const Index* idx = index_.load(std::memory_order_acquire);
    return idx == nullptr ? 0 : idx->size();
  }

  // The hand-written ground truth for the built-in command set: rm, rmdir,
  // mkdir, touch, cat, cp, mv, ls, realpath, echo, grep, sed, cut, sort,
  // head, tail, tr, uniq, wc, lsb_release, curl, basename, dirname, uname,
  // sleep, true, false, date, chmod.
  static const SpecLibrary& BuiltinGroundTruth();

 private:
  using Index = std::unordered_map<util::Symbol, const CommandSpec*>;

  std::deque<CommandSpec> specs_;  // Deque: Find() pointers stay stable.
  std::atomic<const Index*> index_{nullptr};  // Live snapshot (owned below).
  // Every snapshot ever published, the live one last; old ones are retired
  // rather than freed because a concurrent Find may still be probing them.
  // Freed with the library (by which point no reader may remain, the same
  // lifetime contract the spec pointers already impose).
  std::vector<std::unique_ptr<const Index>> snapshots_;
  mutable std::mutex register_mu_;  // Serializes Register (and moves).
};

}  // namespace sash::specs

#endif  // SASH_SPECS_LIBRARY_H_
