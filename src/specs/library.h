// The queryable specification library that accompanies the analysis engine
// (§3: "build a queryable specification library"). Ships with hand-written
// ground-truth specs for the core utility set; the mining pipeline
// (sash::mining) produces specs of the same shape and is validated against
// these.
#ifndef SASH_SPECS_LIBRARY_H_
#define SASH_SPECS_LIBRARY_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "specs/hoare.h"
#include "util/intern.h"

namespace sash::specs {

class SpecLibrary {
 public:
  // Registering the same command twice aborts (always, not just in debug
  // builds): a duplicate used to silently shadow the earlier spec, which is
  // a corpus bug that must not pass unnoticed.
  void Register(CommandSpec spec);

  // Dispatch is one hash probe on the interned command name, with the index
  // built at registration time. The string overload uses a non-inserting
  // symbol lookup, so probing arbitrary runtime command names never grows
  // the interner.
  const CommandSpec* Find(util::Symbol command) const {
    auto it = index_.find(command);
    return it == index_.end() ? nullptr : it->second;
  }
  const CommandSpec* Find(const std::string& command) const {
    auto sym = util::Symbol::Find(command);
    return sym.has_value() ? Find(*sym) : nullptr;
  }
  bool Has(const std::string& command) const { return Find(command) != nullptr; }
  std::vector<std::string> CommandNames() const;  // Sorted.
  size_t size() const { return specs_.size(); }

  // The hand-written ground truth for the built-in command set: rm, rmdir,
  // mkdir, touch, cat, cp, mv, ls, realpath, echo, grep, sed, cut, sort,
  // head, tail, tr, uniq, wc, lsb_release, curl, basename, dirname, uname,
  // sleep, true, false, date, chmod.
  static const SpecLibrary& BuiltinGroundTruth();

 private:
  std::deque<CommandSpec> specs_;  // Deque: Find() pointers stay stable.
  std::unordered_map<util::Symbol, const CommandSpec*> index_;
};

}  // namespace sash::specs

#endif  // SASH_SPECS_LIBRARY_H_
