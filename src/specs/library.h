// The queryable specification library that accompanies the analysis engine
// (§3: "build a queryable specification library"). Ships with hand-written
// ground-truth specs for the core utility set; the mining pipeline
// (sash::mining) produces specs of the same shape and is validated against
// these.
#ifndef SASH_SPECS_LIBRARY_H_
#define SASH_SPECS_LIBRARY_H_

#include <map>
#include <string>
#include <vector>

#include "specs/hoare.h"

namespace sash::specs {

class SpecLibrary {
 public:
  void Register(CommandSpec spec);
  const CommandSpec* Find(const std::string& command) const;
  bool Has(const std::string& command) const { return Find(command) != nullptr; }
  std::vector<std::string> CommandNames() const;
  size_t size() const { return specs_.size(); }

  // The hand-written ground truth for the built-in command set: rm, rmdir,
  // mkdir, touch, cat, cp, mv, ls, realpath, echo, grep, sed, cut, sort,
  // head, tail, tr, uniq, wc, lsb_release, curl, basename, dirname, uname,
  // sleep, true, false, date, chmod.
  static const SpecLibrary& BuiltinGroundTruth();

 private:
  std::map<std::string, CommandSpec> specs_;
};

}  // namespace sash::specs

#endif  // SASH_SPECS_LIBRARY_H_
