// The invocation-syntax DSL: a machine-checkable description of which
// command lines are legitimate for a utility, following the XBD Utility
// Syntax Guidelines (flags, option-arguments, operands).
//
// In the paper (§3, Fig. 4) this DSL guardrails an LLM translating man pages;
// here it plays the same role for the deterministic DocMiner, and doubles as
// the command-line parser the prober and monitor use to interpret argv.
#ifndef SASH_SPECS_SYNTAX_SPEC_H_
#define SASH_SPECS_SYNTAX_SPEC_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace sash::specs {

// What kind of value an operand (or option-argument) denotes. Drives both
// probe-environment generation and symbolic interpretation.
enum class ValueKind {
  kPath,     // A file-system path.
  kString,   // Free-form text.
  kNumber,   // Integer.
  kPattern,  // A regex / glob pattern.
};

struct FlagSpec {
  char letter = '\0';        // The -x form ('\0' when only a long form exists).
  std::string long_name;     // The --xxx form (may be empty).
  bool takes_arg = false;
  ValueKind arg_kind = ValueKind::kString;
  std::string description;
};

struct OperandSpec {
  std::string name;  // For display: "file", "source", "target".
  ValueKind kind = ValueKind::kPath;
  int min_count = 1;
  int max_count = 1;  // -1: unbounded.
};

struct SyntaxSpec {
  std::string command;
  std::string summary;  // One-line description from the docs.
  std::vector<FlagSpec> flags;
  std::vector<OperandSpec> operands;

  const FlagSpec* FindShort(char letter) const;
  const FlagSpec* FindLong(std::string_view name) const;

  // Total operand arity bounds implied by `operands`.
  int MinOperands() const;
  int MaxOperands() const;  // -1: unbounded.

  // A usage line, e.g. "rm [-f] [-r] file...".
  std::string UsageString() const;
};

// A parsed, validated command line.
struct Invocation {
  std::string command;
  std::set<char> flags;                    // Present boolean flags (by letter).
  std::map<char, std::string> flag_args;   // Option-arguments (by letter).
  std::vector<std::string> operands;

  bool HasFlag(char letter) const { return flags.count(letter) > 0; }
  std::optional<std::string> FlagArg(char letter) const;

  // Reconstructs a canonical argv (command, flags sorted, then operands).
  std::vector<std::string> ToArgv() const;
};

// Parses argv (excluding the command name) against the syntax spec.
// Implements POSIX conventions: combined flags (-rf), option-arguments either
// attached (-n3) or separate (-n 3), "--" end-of-options, long options.
// Fails (kInval) on unknown flags or arity violations — this is the
// "expresses only legitimate invocations" guardrail property.
Result<Invocation> ParseInvocation(const SyntaxSpec& spec, const std::vector<std::string>& args);

}  // namespace sash::specs

#endif  // SASH_SPECS_SYNTAX_SPEC_H_
