#include "specs/hoare.h"

namespace sash::specs {

std::string_view PathStateName(PathState s) {
  switch (s) {
    case PathState::kAny:
      return "any";
    case PathState::kExists:
      return "path.FD";
    case PathState::kIsFile:
      return "path.F";
    case PathState::kIsDir:
      return "path.D";
    case PathState::kAbsent:
      return "absent";
  }
  return "?";
}

std::string_view EffectKindName(EffectKind k) {
  switch (k) {
    case EffectKind::kNone:
      return "none";
    case EffectKind::kDeleteTree:
      return "delete-tree";
    case EffectKind::kDeleteFile:
      return "delete-file";
    case EffectKind::kDeleteEmptyDir:
      return "delete-empty-dir";
    case EffectKind::kCreateFile:
      return "create-file";
    case EffectKind::kCreateDir:
      return "create-dir";
    case EffectKind::kTruncateWrite:
      return "truncate-write";
    case EffectKind::kWriteUnder:
      return "write-under";
    case EffectKind::kReadFile:
      return "read-file";
    case EffectKind::kCopyToLast:
      return "copy-to-last";
    case EffectKind::kMoveToLast:
      return "move-to-last";
  }
  return "?";
}

namespace {

std::string SelName(const OperandSel& sel) {
  switch (sel.kind) {
    case OperandSel::Kind::kEach:
      return "$p";
    case OperandSel::Kind::kIndex:
      return "$p" + std::to_string(sel.index);
    case OperandSel::Kind::kLast:
      return "$dst";
    case OperandSel::Kind::kAllButLast:
      return "$src";
    case OperandSel::Kind::kAllButFirst:
      return "$file";
  }
  return "$p";
}

}  // namespace

bool SpecCase::FlagsMatch(const Invocation& inv) const {
  for (char f : required_flags) {
    if (!inv.HasFlag(f)) {
      return false;
    }
  }
  for (char f : forbidden_flags) {
    if (inv.HasFlag(f)) {
      return false;
    }
  }
  return true;
}

std::string SpecCase::ToHoareString(const std::string& command) const {
  std::string pre_s;
  bool first = true;
  for (const PreCond& p : pre) {
    if (p.state == PathState::kAny) {
      continue;
    }
    if (!first) {
      pre_s += " ∧ ";
    }
    first = false;
    std::string name = SelName(p.sel);
    if (p.state == PathState::kAbsent) {
      pre_s += "(∄ " + name + ")";
    } else {
      pre_s += "(∃ " + name + ") ∧ (arg " + name + " " + std::string(PathStateName(p.state)) + ")";
    }
  }
  if (pre_s.empty()) {
    pre_s = "true";
  }
  std::string cmd_s = command;
  for (char f : required_flags) {
    cmd_s += std::string(" -") + f;
  }
  cmd_s += " $p";
  std::string post_s;
  first = true;
  for (const Effect& e : effects) {
    if (e.kind == EffectKind::kNone) {
      continue;
    }
    if (!first) {
      post_s += " ∧ ";
    }
    first = false;
    switch (e.kind) {
      case EffectKind::kDeleteTree:
      case EffectKind::kDeleteFile:
      case EffectKind::kDeleteEmptyDir:
        post_s += "(∄ " + SelName(e.sel) + ")";
        break;
      case EffectKind::kCreateFile:
      case EffectKind::kCreateDir:
      case EffectKind::kTruncateWrite:
      case EffectKind::kWriteUnder:
        post_s += "(∃ " + SelName(e.sel) + ")";
        break;
      case EffectKind::kReadFile:
        post_s += "(read " + SelName(e.sel) + ")";
        break;
      case EffectKind::kCopyToLast:
        post_s += "(copied " + SelName(e.sel) + " → $dst)";
        break;
      case EffectKind::kMoveToLast:
        post_s += "(∄ " + SelName(e.sel) + ") ∧ (∃ $dst)";
        break;
      case EffectKind::kNone:
        break;
    }
  }
  if (!first) {
    post_s += " ∧ ";
  }
  if (exit_code >= 0) {
    post_s += "exit " + std::to_string(exit_code);
  } else {
    post_s += "exit ≠0";
  }
  return "{" + pre_s + "} " + cmd_s + " {" + post_s + "}";
}

std::vector<int> SelectOperands(const OperandSel& sel, int operand_count) {
  std::vector<int> out;
  switch (sel.kind) {
    case OperandSel::Kind::kEach:
      for (int i = 0; i < operand_count; ++i) {
        out.push_back(i);
      }
      break;
    case OperandSel::Kind::kIndex:
      if (sel.index < operand_count) {
        out.push_back(sel.index);
      }
      break;
    case OperandSel::Kind::kLast:
      if (operand_count > 0) {
        out.push_back(operand_count - 1);
      }
      break;
    case OperandSel::Kind::kAllButLast:
      for (int i = 0; i + 1 < operand_count; ++i) {
        out.push_back(i);
      }
      break;
    case OperandSel::Kind::kAllButFirst:
      for (int i = 1; i < operand_count; ++i) {
        out.push_back(i);
      }
      break;
  }
  return out;
}

bool StateSatisfies(PathState actual, PathState required) {
  switch (required) {
    case PathState::kAny:
      return true;
    case PathState::kExists:
      return actual == PathState::kIsFile || actual == PathState::kIsDir ||
             actual == PathState::kExists;
    case PathState::kIsFile:
      return actual == PathState::kIsFile;
    case PathState::kIsDir:
      return actual == PathState::kIsDir;
    case PathState::kAbsent:
      return actual == PathState::kAbsent;
  }
  return false;
}

std::vector<const OperandSpec*> AssignOperands(const SyntaxSpec& syntax, int count) {
  std::vector<const OperandSpec*> out(static_cast<size_t>(count), nullptr);
  if (syntax.operands.empty() || count == 0) {
    return out;
  }
  // First pass: reserve minimum counts left to right.
  std::vector<int> take(syntax.operands.size(), 0);
  int used = 0;
  for (size_t i = 0; i < syntax.operands.size() && used < count; ++i) {
    int want = std::min(syntax.operands[i].min_count, count - used);
    take[i] = want;
    used += want;
  }
  // Second pass: distribute leftovers to slots with remaining capacity,
  // preferring the first unbounded slot.
  int leftover = count - used;
  for (size_t i = 0; i < syntax.operands.size() && leftover > 0; ++i) {
    int capacity = syntax.operands[i].max_count < 0
                       ? leftover
                       : syntax.operands[i].max_count - take[i];
    int extra = std::min(capacity, leftover);
    if (extra > 0) {
      take[i] += extra;
      leftover -= extra;
    }
  }
  int idx = 0;
  for (size_t i = 0; i < syntax.operands.size(); ++i) {
    for (int k = 0; k < take[i] && idx < count; ++k) {
      out[static_cast<size_t>(idx++)] = &syntax.operands[i];
    }
  }
  return out;
}

const SpecCase* CommandSpec::MatchCase(const Invocation& inv,
                                       const std::vector<PathState>& states) const {
  for (const SpecCase& c : cases) {
    if (!c.FlagsMatch(inv)) {
      continue;
    }
    bool pre_ok = true;
    for (const PreCond& p : c.pre) {
      for (int idx : SelectOperands(p.sel, static_cast<int>(states.size()))) {
        if (!StateSatisfies(states[static_cast<size_t>(idx)], p.state)) {
          pre_ok = false;
          break;
        }
      }
      if (!pre_ok) {
        break;
      }
    }
    if (pre_ok) {
      return &c;
    }
  }
  return nullptr;
}

std::string CommandSpec::ToString() const {
  std::string out;
  for (const SpecCase& c : cases) {
    out += c.ToHoareString(syntax.command);
    out += '\n';
  }
  return out;
}

}  // namespace sash::specs
