#include "specs/syntax_spec.h"

#include <algorithm>

namespace sash::specs {

const FlagSpec* SyntaxSpec::FindShort(char letter) const {
  for (const FlagSpec& f : flags) {
    if (f.letter == letter) {
      return &f;
    }
  }
  return nullptr;
}

const FlagSpec* SyntaxSpec::FindLong(std::string_view name) const {
  for (const FlagSpec& f : flags) {
    if (!f.long_name.empty() && f.long_name == name) {
      return &f;
    }
  }
  return nullptr;
}

int SyntaxSpec::MinOperands() const {
  int total = 0;
  for (const OperandSpec& o : operands) {
    total += o.min_count;
  }
  return total;
}

int SyntaxSpec::MaxOperands() const {
  int total = 0;
  for (const OperandSpec& o : operands) {
    if (o.max_count < 0) {
      return -1;
    }
    total += o.max_count;
  }
  return total;
}

std::string SyntaxSpec::UsageString() const {
  std::string out = command;
  for (const FlagSpec& f : flags) {
    out += " [-";
    out += f.letter;
    if (f.takes_arg) {
      out += " arg";
    }
    out += "]";
  }
  for (const OperandSpec& o : operands) {
    out += ' ';
    if (o.min_count == 0) {
      out += "[" + o.name + "]";
    } else {
      out += o.name;
    }
    if (o.max_count < 0 || o.max_count > 1) {
      out += "...";
    }
  }
  return out;
}

std::optional<std::string> Invocation::FlagArg(char letter) const {
  auto it = flag_args.find(letter);
  if (it == flag_args.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::string> Invocation::ToArgv() const {
  std::vector<std::string> argv{command};
  for (char f : flags) {
    if (flag_args.count(f) > 0) {
      continue;  // Emitted with its argument below.
    }
    argv.push_back(std::string("-") + f);
  }
  for (const auto& [f, arg] : flag_args) {
    argv.push_back(std::string("-") + f);
    argv.push_back(arg);
  }
  for (const std::string& op : operands) {
    argv.push_back(op);
  }
  return argv;
}

Result<Invocation> ParseInvocation(const SyntaxSpec& spec, const std::vector<std::string>& args) {
  Invocation inv;
  inv.command = spec.command;
  bool options_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!options_done && arg == "--") {
      options_done = true;
      continue;
    }
    if (!options_done && arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      // Long option, possibly --name=value.
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      const FlagSpec* f = spec.FindLong(name);
      if (f == nullptr) {
        return Status::Error(Errc::kInval,
                             spec.command + ": unrecognized option '--" + name + "'");
      }
      char key = f->letter != '\0' ? f->letter : name[0];
      if (f->takes_arg) {
        if (!has_value) {
          if (i + 1 >= args.size()) {
            return Status::Error(Errc::kInval,
                                 spec.command + ": option '--" + name + "' requires an argument");
          }
          value = args[++i];
        }
        inv.flags.insert(key);
        inv.flag_args[key] = value;
      } else {
        if (has_value) {
          return Status::Error(Errc::kInval,
                               spec.command + ": option '--" + name + "' takes no argument");
        }
        inv.flags.insert(key);
      }
      continue;
    }
    if (!options_done && arg.size() >= 2 && arg[0] == '-' && arg != "-") {
      // Short option cluster: -rf, -n3, -n 3.
      for (size_t k = 1; k < arg.size(); ++k) {
        char letter = arg[k];
        const FlagSpec* f = spec.FindShort(letter);
        if (f == nullptr) {
          return Status::Error(Errc::kInval, spec.command + ": invalid option -- '" +
                                                 std::string(1, letter) + "'");
        }
        inv.flags.insert(letter);
        if (f->takes_arg) {
          std::string value;
          if (k + 1 < arg.size()) {
            value = arg.substr(k + 1);  // Attached: -n3.
          } else {
            if (i + 1 >= args.size()) {
              return Status::Error(Errc::kInval, spec.command + ": option requires an argument -- '" +
                                                     std::string(1, letter) + "'");
            }
            value = args[++i];
          }
          inv.flag_args[letter] = value;
          break;
        }
      }
      continue;
    }
    inv.operands.push_back(arg);
  }
  int min_ops = spec.MinOperands();
  int max_ops = spec.MaxOperands();
  if (static_cast<int>(inv.operands.size()) < min_ops) {
    return Status::Error(Errc::kInval, spec.command + ": missing operand");
  }
  if (max_ops >= 0 && static_cast<int>(inv.operands.size()) > max_ops) {
    return Status::Error(Errc::kInval, spec.command + ": extra operand '" +
                                           inv.operands[static_cast<size_t>(max_ops)] + "'");
  }
  return inv;
}

}  // namespace sash::specs
