// Hoare-style command specifications: guarded cases of preconditions over
// operand paths and postconditions describing file-system effects, exit code,
// and stream shape. This is the artifact the paper's Fig. 4 pipeline compiles
// ("compile their effects to specifications targeting key classes of
// constraints"), and the knowledge base the symbolic engine executes against.
//
// The representation is deliberately structured (not formula strings): the
// same SpecCase is interpreted symbolically by sash::symex, executed
// concretely by the prober and monitor, and rendered as a paper-style
// Hoare triple for humans.
#ifndef SASH_SPECS_HOARE_H_
#define SASH_SPECS_HOARE_H_

#include <set>
#include <string>
#include <vector>

#include "specs/syntax_spec.h"

namespace sash::specs {

// Which operand(s) a predicate or effect talks about.
struct OperandSel {
  enum class Kind {
    kEach,         // Every path operand independently.
    kIndex,        // A specific operand.
    kLast,         // The final operand (cp/mv destination).
    kAllButLast,   // Sources of cp/mv.
    kAllButFirst,  // File operands of grep-style pattern-first commands.
  };
  Kind kind = Kind::kEach;
  int index = 0;  // kIndex only.

  static OperandSel Each() { return {Kind::kEach, 0}; }
  static OperandSel Index(int i) { return {Kind::kIndex, i}; }
  static OperandSel Last() { return {Kind::kLast, 0}; }
  static OperandSel AllButLast() { return {Kind::kAllButLast, 0}; }
  static OperandSel AllButFirst() { return {Kind::kAllButFirst, 0}; }

  bool operator==(const OperandSel&) const = default;
};

// The file-system state a precondition requires of a path.
enum class PathState {
  kAny,     // No requirement.
  kExists,  // File or directory ("path.FD" in the paper's notation).
  kIsFile,
  kIsDir,
  kAbsent,
};

std::string_view PathStateName(PathState s);

struct PreCond {
  OperandSel sel;
  PathState state = PathState::kAny;

  bool operator==(const PreCond&) const = default;
};

// Effects a command case has on the file system / streams.
enum class EffectKind {
  kNone,
  kDeleteTree,   // Remove the path recursively (rm -r).
  kDeleteFile,   // Remove a single non-directory.
  kDeleteEmptyDir,
  kCreateFile,   // Create an empty file if absent (touch).
  kCreateDir,    // mkdir.
  kTruncateWrite,  // Overwrite file contents (> redirection, cp dst).
  kWriteUnder,   // Creates or modifies entries at or below the path.
  kReadFile,     // Reads the path (cat); no mutation.
  kCopyToLast,   // Copy selected operand(s) to the last operand.
  kMoveToLast,   // Rename selected operand(s) to the last operand.
};

std::string_view EffectKindName(EffectKind k);

struct Effect {
  EffectKind kind = EffectKind::kNone;
  OperandSel sel;

  bool operator==(const Effect&) const = default;
};

// One guarded case: "if these flags are present and the operand is in this
// state, then these effects happen and the command exits this way".
struct SpecCase {
  std::set<char> required_flags;
  std::set<char> forbidden_flags;
  std::vector<PreCond> pre;
  std::vector<Effect> effects;
  int exit_code = 0;  // -1 means "some nonzero value".
  bool stdout_nonempty = false;
  bool stderr_nonempty = false;

  bool operator==(const SpecCase&) const = default;

  // Whether this case's flag guard admits the invocation.
  bool FlagsMatch(const Invocation& inv) const;

  // Paper-style rendering:
  //   {(∃ $p) ∧ (arg 0 $p path.FD)} rm -f -r $p {(∄ $p) ∧ exit 0}
  std::string ToHoareString(const std::string& command) const;
};

struct CommandSpec {
  SyntaxSpec syntax;
  std::vector<SpecCase> cases;

  // If the command's stdout is a typed line stream, its regular-type pattern
  // (e.g. lsb_release -a). Empty when untyped; richer per-invocation typing
  // lives in sash::stream.
  std::string stdout_line_type;

  const std::string& command() const { return syntax.command; }

  // First case whose flag guard matches and whose preconditions are satisfied
  // by `states` (the observed state of each operand). Returns nullptr when no
  // case applies.
  const SpecCase* MatchCase(const Invocation& inv, const std::vector<PathState>& states) const;

  std::string ToString() const;  // All cases rendered as Hoare triples.
};

// Expands an OperandSel to concrete operand indices for an invocation with
// `operand_count` operands.
std::vector<int> SelectOperands(const OperandSel& sel, int operand_count);

// Assigns each of `count` operands to its OperandSpec slot: specs first take
// their minimum counts left to right; leftovers go to the first unbounded
// (or largest-capacity) slot. Returns one pointer per operand (never null
// when the count is within spec bounds; nullptr for overflow operands).
std::vector<const OperandSpec*> AssignOperands(const SyntaxSpec& syntax, int count);

// True when `actual` (observed concrete state) satisfies `required`.
bool StateSatisfies(PathState actual, PathState required);

}  // namespace sash::specs

#endif  // SASH_SPECS_HOARE_H_
