#include "specs/library.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/lockprobe.h"

namespace sash::specs {

SpecLibrary::SpecLibrary(SpecLibrary&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.register_mu_);
  specs_ = std::move(other.specs_);
  snapshots_ = std::move(other.snapshots_);
  index_.store(other.index_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  other.index_.store(nullptr, std::memory_order_relaxed);
}

SpecLibrary& SpecLibrary::operator=(SpecLibrary&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(register_mu_, other.register_mu_);
    specs_ = std::move(other.specs_);
    snapshots_ = std::move(other.snapshots_);
    index_.store(other.index_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    other.index_.store(nullptr, std::memory_order_relaxed);
  }
  return *this;
}

void SpecLibrary::Register(CommandSpec spec) {
  util::Symbol sym = util::Symbol::Intern(spec.command());
  std::lock_guard<std::mutex> lock(register_mu_);
  const Index* current = index_.load(std::memory_order_relaxed);
  if (current != nullptr && current->count(sym) > 0) {
    std::fprintf(stderr, "specs: duplicate registration of command '%s'\n",
                 spec.command().c_str());
    std::abort();
  }
  specs_.push_back(std::move(spec));
  // Copy-on-write snapshot swap: concurrent readers keep probing the old
  // index (retired below, freed with the library) until the release store
  // hands them the successor — which includes the fully built new entry.
  auto next = current != nullptr ? std::make_unique<Index>(*current) : std::make_unique<Index>();
  next->emplace(sym, &specs_.back());
  index_.store(next.get(), std::memory_order_release);
  snapshots_.push_back(std::move(next));
}

std::vector<std::string> SpecLibrary::CommandNames() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const CommandSpec& spec : specs_) {
    out.push_back(spec.command());
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

FlagSpec Flag(char letter, std::string long_name, std::string description,
              bool takes_arg = false, ValueKind arg_kind = ValueKind::kString) {
  FlagSpec f;
  f.letter = letter;
  f.long_name = std::move(long_name);
  f.takes_arg = takes_arg;
  f.arg_kind = arg_kind;
  f.description = std::move(description);
  return f;
}

OperandSpec Operand(std::string name, ValueKind kind, int min_count, int max_count) {
  OperandSpec o;
  o.name = std::move(name);
  o.kind = kind;
  o.min_count = min_count;
  o.max_count = max_count;
  return o;
}

SpecCase Case(std::set<char> required, std::set<char> forbidden, std::vector<PreCond> pre,
              std::vector<Effect> effects, int exit_code, bool stdout_nonempty = false,
              bool stderr_nonempty = false) {
  SpecCase c;
  c.required_flags = std::move(required);
  c.forbidden_flags = std::move(forbidden);
  c.pre = std::move(pre);
  c.effects = std::move(effects);
  c.exit_code = exit_code;
  c.stdout_nonempty = stdout_nonempty;
  c.stderr_nonempty = stderr_nonempty;
  return c;
}

PreCond Pre(OperandSel sel, PathState state) { return PreCond{sel, state}; }

Effect Eff(EffectKind kind, OperandSel sel) { return Effect{kind, sel}; }

CommandSpec RmSpec() {
  CommandSpec s;
  s.syntax.command = "rm";
  s.syntax.summary = "remove directory entries";
  s.syntax.flags = {Flag('f', "force", "ignore nonexistent files, never prompt"),
                    Flag('r', "recursive", "remove directories and their contents recursively"),
                    Flag('R', "", "equivalent to -r"),
                    Flag('i', "interactive", "prompt before every removal"),
                    Flag('v', "verbose", "explain what is being done")};
  s.syntax.operands = {Operand("file", ValueKind::kPath, 1, -1)};
  // Ordered: first matching case wins.
  auto each = OperandSel::Each();
  s.cases = {
      // {(∃ $p)} rm -r -f $p {(∄ $p) ∧ exit 0} — and absent is a no-op.
      Case({'r', 'f'}, {}, {Pre(each, PathState::kExists)},
           {Eff(EffectKind::kDeleteTree, each)}, 0),
      Case({'r', 'f'}, {}, {Pre(each, PathState::kAbsent)}, {}, 0),
      Case({'r', 'f'}, {}, {Pre(each, PathState::kAny)}, {Eff(EffectKind::kDeleteTree, each)}, 0),
      Case({'r'}, {'f'}, {Pre(each, PathState::kExists)}, {Eff(EffectKind::kDeleteTree, each)}, 0),
      Case({'r'}, {'f'}, {Pre(each, PathState::kAbsent)}, {}, 1, false, true),
      Case({'f'}, {'r'}, {Pre(each, PathState::kIsFile)}, {Eff(EffectKind::kDeleteFile, each)}, 0),
      Case({'f'}, {'r'}, {Pre(each, PathState::kAbsent)}, {}, 0),
      Case({'f'}, {'r'}, {Pre(each, PathState::kIsDir)}, {}, 1, false, true),
      Case({}, {'r', 'f'}, {Pre(each, PathState::kIsFile)}, {Eff(EffectKind::kDeleteFile, each)},
           0),
      Case({}, {'r', 'f'}, {Pre(each, PathState::kIsDir)}, {}, 1, false, true),
      Case({}, {'r', 'f'}, {Pre(each, PathState::kAbsent)}, {}, 1, false, true),
  };
  return s;
}

CommandSpec RmdirSpec() {
  CommandSpec s;
  s.syntax.command = "rmdir";
  s.syntax.summary = "remove empty directories";
  s.syntax.flags = {Flag('p', "parents", "remove ancestor directories as well")};
  s.syntax.operands = {Operand("dir", ValueKind::kPath, 1, -1)};
  auto each = OperandSel::Each();
  s.cases = {
      // Emptiness is checked concretely; symbolically a kIsDir match may
      // still fail at runtime, which the engine reports as "may fail".
      Case({}, {}, {Pre(each, PathState::kIsDir)}, {Eff(EffectKind::kDeleteEmptyDir, each)}, 0),
      Case({}, {}, {Pre(each, PathState::kIsFile)}, {}, 1, false, true),
      Case({}, {}, {Pre(each, PathState::kAbsent)}, {}, 1, false, true),
  };
  return s;
}

CommandSpec MkdirSpec() {
  CommandSpec s;
  s.syntax.command = "mkdir";
  s.syntax.summary = "make directories";
  s.syntax.flags = {Flag('p', "parents", "no error if existing, make parents as needed"),
                    Flag('m', "mode", "set file mode", true)};
  s.syntax.operands = {Operand("dir", ValueKind::kPath, 1, -1)};
  auto each = OperandSel::Each();
  s.cases = {
      // mkdir -p: a no-op on an existing directory, an error when the path
      // is an existing non-directory (found by the prober, kept honest).
      Case({'p'}, {}, {Pre(each, PathState::kIsDir)}, {}, 0),
      Case({'p'}, {}, {Pre(each, PathState::kIsFile)}, {}, 1, false, true),
      Case({'p'}, {}, {Pre(each, PathState::kAny)}, {Eff(EffectKind::kCreateDir, each)}, 0),
      Case({}, {'p'}, {Pre(each, PathState::kAbsent)}, {Eff(EffectKind::kCreateDir, each)}, 0),
      Case({}, {'p'}, {Pre(each, PathState::kExists)}, {}, 1, false, true),
  };
  return s;
}

CommandSpec TouchSpec() {
  CommandSpec s;
  s.syntax.command = "touch";
  s.syntax.summary = "change file timestamps / create empty files";
  s.syntax.flags = {Flag('c', "no-create", "do not create any files")};
  s.syntax.operands = {Operand("file", ValueKind::kPath, 1, -1)};
  auto each = OperandSel::Each();
  s.cases = {
      Case({'c'}, {}, {Pre(each, PathState::kAny)}, {}, 0),
      Case({}, {'c'}, {Pre(each, PathState::kAbsent)}, {Eff(EffectKind::kCreateFile, each)}, 0),
      Case({}, {'c'}, {Pre(each, PathState::kExists)}, {}, 0),
  };
  return s;
}

CommandSpec CatSpec() {
  CommandSpec s;
  s.syntax.command = "cat";
  s.syntax.summary = "concatenate and print files";
  s.syntax.flags = {Flag('n', "number", "number all output lines"),
                    Flag('u', "", "unbuffered output")};
  s.syntax.operands = {Operand("file", ValueKind::kPath, 0, -1)};
  auto each = OperandSel::Each();
  s.cases = {
      Case({}, {}, {Pre(each, PathState::kIsFile)}, {Eff(EffectKind::kReadFile, each)}, 0, true),
      Case({}, {}, {Pre(each, PathState::kIsDir)}, {}, 1, false, true),
      Case({}, {}, {Pre(each, PathState::kAbsent)}, {}, 1, false, true),
  };
  return s;
}

CommandSpec CpSpec() {
  CommandSpec s;
  s.syntax.command = "cp";
  s.syntax.summary = "copy files";
  s.syntax.flags = {Flag('r', "recursive", "copy directories recursively"),
                    Flag('R', "", "equivalent to -r"),
                    Flag('f', "force", "overwrite without prompting"),
                    Flag('p', "preserve", "preserve attributes")};
  s.syntax.operands = {Operand("source", ValueKind::kPath, 1, -1),
                       Operand("target", ValueKind::kPath, 1, 1)};
  auto srcs = OperandSel::AllButLast();
  auto dst = OperandSel::Last();
  s.cases = {
      // Copying a directory over an existing non-directory fails even with -r.
      Case({'r'}, {}, {Pre(srcs, PathState::kIsDir), Pre(dst, PathState::kIsFile)}, {}, 1, false,
           true),
      Case({'r'}, {}, {Pre(srcs, PathState::kExists)}, {Eff(EffectKind::kCopyToLast, srcs)}, 0),
      Case({}, {'r'}, {Pre(srcs, PathState::kIsFile)}, {Eff(EffectKind::kCopyToLast, srcs)}, 0),
      Case({}, {'r'}, {Pre(srcs, PathState::kIsDir)}, {}, 1, false, true),
      Case({}, {}, {Pre(srcs, PathState::kAbsent)}, {}, 1, false, true),
  };
  return s;
}

CommandSpec MvSpec() {
  CommandSpec s;
  s.syntax.command = "mv";
  s.syntax.summary = "move (rename) files";
  s.syntax.flags = {Flag('f', "force", "do not prompt before overwriting"),
                    Flag('i', "interactive", "prompt before overwrite")};
  s.syntax.operands = {Operand("source", ValueKind::kPath, 1, -1),
                       Operand("target", ValueKind::kPath, 1, 1)};
  auto srcs = OperandSel::AllButLast();
  auto dst = OperandSel::Last();
  s.cases = {
      // A directory cannot overwrite an existing non-directory.
      Case({}, {}, {Pre(srcs, PathState::kIsDir), Pre(dst, PathState::kIsFile)}, {}, 1, false,
           true),
      Case({}, {}, {Pre(srcs, PathState::kExists)}, {Eff(EffectKind::kMoveToLast, srcs)}, 0),
      Case({}, {}, {Pre(srcs, PathState::kAbsent)}, {}, 1, false, true),
  };
  return s;
}

CommandSpec LsSpec() {
  CommandSpec s;
  s.syntax.command = "ls";
  s.syntax.summary = "list directory contents";
  s.syntax.flags = {Flag('l', "", "long listing format"), Flag('a', "all", "include dotfiles"),
                    Flag('1', "", "one entry per line"), Flag('d', "directory", "list dirs themselves"),
                    Flag('R', "", "recursive")};
  s.syntax.operands = {Operand("path", ValueKind::kPath, 0, -1)};
  auto each = OperandSel::Each();
  s.cases = {
      Case({}, {}, {Pre(each, PathState::kExists)}, {Eff(EffectKind::kReadFile, each)}, 0, true),
      Case({}, {}, {Pre(each, PathState::kAbsent)}, {}, 2, false, true),
  };
  return s;
}

CommandSpec RealpathSpec() {
  CommandSpec s;
  s.syntax.command = "realpath";
  s.syntax.summary = "print the resolved (canonical) path";
  s.syntax.flags = {Flag('e', "canonicalize-existing", "all components must exist"),
                    Flag('m', "canonicalize-missing", "no components need exist")};
  s.syntax.operands = {Operand("path", ValueKind::kPath, 1, -1)};
  auto each = OperandSel::Each();
  s.cases = {
      Case({'m'}, {}, {Pre(each, PathState::kAny)}, {}, 0, true),
      Case({}, {'m'}, {Pre(each, PathState::kExists)}, {}, 0, true),
      Case({}, {'m'}, {Pre(each, PathState::kAbsent)}, {}, 1, false, true),
  };
  s.stdout_line_type = "/([^/\\x00]+/)*[^/\\x00]*";
  return s;
}

CommandSpec EchoSpec() {
  CommandSpec s;
  s.syntax.command = "echo";
  s.syntax.summary = "write arguments to standard output";
  s.syntax.flags = {Flag('n', "", "do not output the trailing newline")};
  s.syntax.operands = {Operand("string", ValueKind::kString, 0, -1)};
  s.cases = {Case({}, {}, {}, {}, 0, true)};
  return s;
}

CommandSpec GrepSpec() {
  CommandSpec s;
  s.syntax.command = "grep";
  s.syntax.summary = "search input for lines matching a pattern";
  s.syntax.flags = {Flag('q', "quiet", "suppress output"),
                    Flag('v', "invert-match", "select non-matching lines"),
                    Flag('i', "ignore-case", "case-insensitive match"),
                    Flag('o', "only-matching", "print only the matched parts"),
                    Flag('E', "extended-regexp", "extended regular expressions"),
                    Flag('F', "fixed-strings", "fixed-string match"),
                    Flag('c', "count", "print a count of matching lines"),
                    Flag('n', "line-number", "prefix output with line numbers"),
                    Flag('e', "regexp", "pattern", true, ValueKind::kPattern)};
  s.syntax.operands = {Operand("pattern", ValueKind::kPattern, 1, 1),
                       Operand("file", ValueKind::kPath, 0, -1)};
  auto files = OperandSel::AllButFirst();
  s.cases = {
      // Exit code 0 = matched, 1 = no match: modeled as "some" (-1).
      Case({}, {}, {Pre(files, PathState::kIsFile)}, {Eff(EffectKind::kReadFile, files)}, -1,
           true),
      Case({}, {}, {Pre(files, PathState::kAbsent)}, {}, 2, false, true),
  };
  return s;
}

// Read-stdin/write-stdout filters share one shape.
CommandSpec FilterSpec(const std::string& name, const std::string& summary,
                       std::vector<FlagSpec> flags,
                       std::vector<OperandSpec> operands = {}) {
  CommandSpec s;
  s.syntax.command = name;
  s.syntax.summary = summary;
  s.syntax.flags = std::move(flags);
  if (operands.empty()) {
    s.syntax.operands = {Operand("file", ValueKind::kPath, 0, -1)};
  } else {
    s.syntax.operands = std::move(operands);
  }
  auto each = OperandSel::Each();
  s.cases = {
      Case({}, {}, {Pre(each, PathState::kIsFile)}, {Eff(EffectKind::kReadFile, each)}, 0, true),
      Case({}, {}, {Pre(each, PathState::kAbsent)}, {}, 1, false, true),
      Case({}, {}, {}, {}, 0, true),  // Pure-stdin use.
  };
  return s;
}

CommandSpec LsbReleaseSpec() {
  CommandSpec s;
  s.syntax.command = "lsb_release";
  s.syntax.summary = "print distribution information";
  s.syntax.flags = {Flag('a', "all", "display all information"),
                    Flag('s', "short", "display in short format"),
                    Flag('i', "id", "display distributor id"),
                    Flag('d', "description", "display description"),
                    Flag('r', "release", "display release number"),
                    Flag('c', "codename", "display codename")};
  s.cases = {Case({}, {}, {}, {}, 0, true)};
  // The paper's §3 line type for lsb_release -a output.
  s.stdout_line_type = "(Distributor ID|Description|Release|Codename):\\t.*";
  return s;
}

CommandSpec CurlSpec() {
  CommandSpec s;
  s.syntax.command = "curl";
  s.syntax.summary = "transfer a URL";
  s.syntax.flags = {Flag('s', "silent", "silent mode"),
                    Flag('L', "location", "follow redirects"),
                    Flag('f', "fail", "fail silently on server errors"),
                    Flag('o', "output", "write output to file", true, ValueKind::kPath),
                    Flag('O', "remote-name", "write output to a file named like the remote")};
  s.syntax.operands = {Operand("url", ValueKind::kString, 1, -1)};
  s.cases = {Case({}, {}, {}, {}, -1, true)};
  return s;
}

CommandSpec TrivialSpec(const std::string& name, const std::string& summary, int exit_code,
                        bool stdout_nonempty) {
  CommandSpec s;
  s.syntax.command = name;
  s.syntax.summary = summary;
  s.cases = {Case({}, {}, {}, {}, exit_code, stdout_nonempty)};
  return s;
}

CommandSpec PathToTextSpec(const std::string& name, const std::string& summary) {
  CommandSpec s;
  s.syntax.command = name;
  s.syntax.summary = summary;
  s.syntax.operands = {Operand("path", ValueKind::kString, 1, 2)};
  s.cases = {Case({}, {}, {}, {}, 0, true)};
  return s;
}

SpecLibrary BuildGroundTruth() {
  SpecLibrary lib;
  lib.Register(RmSpec());
  lib.Register(RmdirSpec());
  lib.Register(MkdirSpec());
  lib.Register(TouchSpec());
  lib.Register(CatSpec());
  lib.Register(CpSpec());
  lib.Register(MvSpec());
  lib.Register(LsSpec());
  lib.Register(RealpathSpec());
  lib.Register(EchoSpec());
  lib.Register(GrepSpec());
  lib.Register(LsbReleaseSpec());
  lib.Register(CurlSpec());
  lib.Register(FilterSpec(
      "sed", "stream editor",
      {Flag('n', "quiet", "suppress automatic printing"),
       Flag('e', "expression", "add script", true, ValueKind::kPattern)},
      {Operand("script", ValueKind::kPattern, 1, 1), Operand("file", ValueKind::kPath, 0, -1)}));
  lib.Register(FilterSpec("cut", "remove sections from lines",
                          {Flag('f', "fields", "select fields", true),
                           Flag('d', "delimiter", "field delimiter", true),
                           Flag('c', "characters", "select characters", true)}));
  lib.Register(FilterSpec("sort", "sort lines of text",
                          {Flag('g', "general-numeric-sort", "general numeric sort"),
                           Flag('n', "numeric-sort", "numeric sort"),
                           Flag('r', "reverse", "reverse order"),
                           Flag('u', "unique", "unique lines"),
                           Flag('k', "key", "sort key", true)}));
  lib.Register(FilterSpec("head", "output the first part of files",
                          {Flag('n', "lines", "number of lines", true, ValueKind::kNumber),
                           Flag('c', "bytes", "number of bytes", true, ValueKind::kNumber)}));
  lib.Register(FilterSpec("tail", "output the last part of files",
                          {Flag('n', "lines", "number of lines", true, ValueKind::kNumber),
                           Flag('f', "follow", "output appended data as the file grows")}));
  lib.Register(FilterSpec("tr", "translate characters",
                          {Flag('d', "delete", "delete characters"),
                           Flag('s', "squeeze-repeats", "squeeze repeats")},
                          {Operand("set1", ValueKind::kString, 1, 1),
                           Operand("set2", ValueKind::kString, 0, 1)}));
  lib.Register(FilterSpec("uniq", "report or omit repeated lines",
                          {Flag('c', "count", "prefix lines by count"),
                           Flag('d', "repeated", "only print duplicates")}));
  lib.Register(FilterSpec("wc", "print line, word, and byte counts",
                          {Flag('l', "lines", "print line count"),
                           Flag('w', "words", "print word count"),
                           Flag('c', "bytes", "print byte count")}));
  lib.Register(PathToTextSpec("basename", "strip directory and suffix from a path"));
  lib.Register(PathToTextSpec("dirname", "strip the last component from a path"));
  lib.Register(TrivialSpec("uname", "print system information", 0, true));
  lib.Register(TrivialSpec("date", "print the current date and time", 0, true));
  lib.Register(TrivialSpec("pwd", "print the working directory", 0, true));
  lib.Register(TrivialSpec("true", "do nothing, successfully", 0, false));
  lib.Register(TrivialSpec("false", "do nothing, unsuccessfully", 1, false));
  {
    CommandSpec sleep_spec;
    sleep_spec.syntax.command = "sleep";
    sleep_spec.syntax.summary = "suspend execution for an interval";
    sleep_spec.syntax.operands = {Operand("seconds", ValueKind::kNumber, 1, 1)};
    sleep_spec.cases = {Case({}, {}, {}, {}, 0)};
    lib.Register(std::move(sleep_spec));
  }
  {
    CommandSpec chmod_spec;
    chmod_spec.syntax.command = "chmod";
    chmod_spec.syntax.summary = "change file mode bits (modes not modeled)";
    chmod_spec.syntax.flags = {Flag('R', "recursive", "operate recursively")};
    chmod_spec.syntax.operands = {Operand("mode", ValueKind::kString, 1, 1),
                                  Operand("file", ValueKind::kPath, 1, -1)};
    auto files = OperandSel::AllButFirst();
    chmod_spec.cases = {
        Case({}, {}, {Pre(files, PathState::kExists)}, {}, 0),
        Case({}, {}, {Pre(files, PathState::kAbsent)}, {}, 1, false, true),
    };
    lib.Register(std::move(chmod_spec));
  }
  return lib;
}

}  // namespace

const SpecLibrary& SpecLibrary::BuiltinGroundTruth() {
  // The library itself is immutable after construction and needs no lock, but
  // the magic static's one-time build serializes every thread that races to
  // first use — the probe makes that startup convoy visible in profiles.
  static obs::LockSite* site = obs::LockProbes::Register("specs.library.init");
  // 10us threshold: the steady-state path (a static-init check) never counts
  // as contended; a thread parked behind the initial build does.
  obs::ScopedWaitProbe probe(site, /*contended_threshold_ns=*/10'000);
  static const SpecLibrary kLibrary = BuildGroundTruth();
  return kLibrary;
}

}  // namespace sash::specs
