#include "rtypes/types.h"

#include "util/strings.h"

namespace sash::rtypes {

TypeExpr TypeExpr::Var() {
  TypeExpr e;
  e.kind_ = Kind::kVar;
  return e;
}

TypeExpr TypeExpr::Lang(regex::Regex lang) {
  TypeExpr e;
  e.kind_ = Kind::kLang;
  e.lang_ = std::move(lang);
  return e;
}

TypeExpr TypeExpr::Concat(std::vector<TypeExpr> parts) {
  TypeExpr e;
  e.kind_ = Kind::kConcat;
  e.parts_ = std::move(parts);
  return e;
}

TypeExpr TypeExpr::Prefix(std::string text) { return Lang(regex::Regex::Literal(text)); }

bool TypeExpr::UsesVar() const {
  switch (kind_) {
    case Kind::kVar:
      return true;
    case Kind::kLang:
      return false;
    case Kind::kConcat:
      for (const TypeExpr& p : parts_) {
        if (p.UsesVar()) {
          return true;
        }
      }
      return false;
  }
  return false;
}

regex::Regex TypeExpr::Substitute(const regex::Regex& alpha) const {
  switch (kind_) {
    case Kind::kVar:
      return alpha;
    case Kind::kLang:
      return *lang_;
    case Kind::kConcat: {
      regex::Regex out = regex::Regex::Epsilon();
      for (const TypeExpr& p : parts_) {
        out = out.Concat(p.Substitute(alpha));
      }
      return out;
    }
  }
  return regex::Regex::Nothing();
}

std::string TypeExpr::ToString() const {
  switch (kind_) {
    case Kind::kVar:
      return "α";
    case Kind::kLang:
      return lang_->pattern();
    case Kind::kConcat: {
      std::string out;
      for (const TypeExpr& p : parts_) {
        out += p.ToString();
      }
      return out;
    }
  }
  return "?";
}

std::string CommandType::ToString() const {
  std::string out;
  if (polymorphic) {
    out += "∀α";
    if (bound.has_value()) {
      out += " ⊆ " + bound->pattern();
    }
    out += ". ";
  }
  out += input.ToString();
  out += " → ";
  if (intersect_filter.has_value()) {
    out += "(" + input.ToString() + " ∩ " + intersect_filter->pattern() + ")";
  } else {
    out += output.ToString();
  }
  return out;
}

ApplyResult Apply(const CommandType& type, const regex::Regex& input) {
  ApplyResult result;

  if (input.IsEmptyLanguage()) {
    // Dead streams stay dead regardless of the command.
    result.ok = true;
    result.output = regex::Regex::Nothing();
    result.output_empty = true;
    return result;
  }

  if (type.intersect_filter.has_value()) {
    regex::Regex out = input.Intersect(*type.intersect_filter);
    result.ok = true;
    result.output_empty = out.IsEmptyLanguage();
    result.output = std::move(out);
    return result;
  }

  regex::Regex alpha = regex::Regex::AnyLine();
  if (type.polymorphic && type.input.kind() == TypeExpr::Kind::kVar) {
    // Inference: α := the concrete input language.
    alpha = input;
    if (type.bound.has_value() && !alpha.IncludedIn(*type.bound)) {
      result.error = "type error: " + alpha.pattern() + " ⊄ " + type.bound->pattern();
      return result;
    }
  } else {
    // Subsumption against a fixed input language.
    regex::Regex expected = type.input.Substitute(alpha);
    if (!input.IncludedIn(expected)) {
      result.error = "type error: input " + input.pattern() + " ⊄ " + expected.pattern();
      return result;
    }
  }
  regex::Regex out = type.output.Substitute(alpha);
  result.ok = true;
  result.output_empty = out.IsEmptyLanguage();
  result.output = std::move(out);
  return result;
}

void TypeLibrary::Define(std::string name, regex::Regex lang) {
  for (auto& [n, l] : types_) {
    if (n == name) {
      l = std::move(lang);
      return;
    }
  }
  types_.emplace_back(std::move(name), std::move(lang));
}

const regex::Regex* TypeLibrary::Find(std::string_view name) const {
  for (const auto& [n, l] : types_) {
    if (n == name) {
      return &l;
    }
  }
  return nullptr;
}

std::vector<std::string> TypeLibrary::Names() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [n, l] : types_) {
    out.push_back(n);
  }
  return out;
}

std::optional<regex::Regex> TypeLibrary::Resolve(std::string_view spelling) const {
  spelling = Trim(spelling);
  if (spelling.size() >= 2 && spelling.front() == '/' && spelling.back() == '/') {
    std::string err;
    return regex::Regex::FromPattern(spelling.substr(1, spelling.size() - 2), &err);
  }
  const regex::Regex* named = Find(spelling);
  if (named != nullptr) {
    return *named;
  }
  return std::nullopt;
}

TypeLibrary TypeLibrary::Default() {
  TypeLibrary lib;
  auto def = [&lib](const char* name, const char* pattern) {
    std::optional<regex::Regex> r = regex::Regex::FromPattern(pattern);
    if (r.has_value()) {
      lib.Define(name, std::move(*r));
    }
  };
  lib.Define("any", regex::Regex::AnyLine());
  lib.Define("none", regex::Regex::Nothing());
  lib.Define("empty", regex::Regex::Epsilon());
  def("line", ".+");
  def("word", "\\S+");
  def("number", "-?\\d+");
  def("hexline", "[0-9a-f]+");
  def("hex0x", "0x[0-9a-f]+");
  def("path", "/?([^/\\n]*/)*[^/\\n]+");
  def("abspath", "/([^/\\n]+/)*[^/\\n]*");
  def("url", "(https?|ftp)://[^\\s/$.?#]\\S*");
  def("tsvline", "[^\\t\\n]*(\\t[^\\t\\n]*)*");
  def("longlist", "[-dlbcps][-rwxsStT]{9} +\\d+ +\\w+ +\\w+ +\\d+ .*");
  def("lsbline", "(Distributor ID|Description|Release|Codename):\\t.*");
  return lib;
}

std::string TypeOf(const TypeLibrary& lib, const regex::Regex& lang) {
  // Exact match first.
  for (const std::string& name : lib.Names()) {
    const regex::Regex* l = lib.Find(name);
    if (l != nullptr && name != "any" && lang.EquivalentTo(*l)) {
      return name;
    }
  }
  // Then the most specific superset: a containing type that no other
  // containing type is strictly below.
  std::vector<std::string> candidates;
  for (const std::string& name : lib.Names()) {
    const regex::Regex* l = lib.Find(name);
    if (l != nullptr && name != "any" && name != "none" && lang.IncludedIn(*l)) {
      candidates.push_back(name);
    }
  }
  for (const std::string& name : candidates) {
    const regex::Regex* l = lib.Find(name);
    bool minimal = true;
    for (const std::string& other : candidates) {
      if (other == name) {
        continue;
      }
      const regex::Regex* ol = lib.Find(other);
      if (ol != nullptr && ol->IncludedIn(*l) && !l->IncludedIn(*ol)) {
        minimal = false;
        break;
      }
    }
    if (minimal) {
      return name;
    }
  }
  return lang.IsEmptyLanguage() ? "none" : "any";
}

}  // namespace sash::rtypes
