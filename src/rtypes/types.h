// Regular types (§3-§4): a new type system for string shapes centered on
// regular languages. A stream's type describes the language of each of its
// lines; subtyping is language inclusion; command types are functions from
// line types to line types, optionally polymorphic:
//
//   grep '^desc'  ::  .* → desc.*
//   sed 's/^/0x/' ::  ∀α. α → 0xα
//   sort -g       ::  ∀α ⊆ numericish. α → α
#ifndef SASH_RTYPES_TYPES_H_
#define SASH_RTYPES_TYPES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "regex/regex.h"

namespace sash::rtypes {

// A type expression over at most one type variable α.
class TypeExpr {
 public:
  enum class Kind { kVar, kLang, kConcat };

  static TypeExpr Var();                       // α
  static TypeExpr Lang(regex::Regex lang);     // A fixed language.
  static TypeExpr Concat(std::vector<TypeExpr> parts);  // e.g. "0x" · α.
  static TypeExpr Prefix(std::string text);    // Literal text (helper).

  Kind kind() const { return kind_; }
  const regex::Regex& lang() const { return *lang_; }
  const std::vector<TypeExpr>& parts() const { return parts_; }

  bool UsesVar() const;

  // Substitutes `alpha` for the variable, yielding a concrete language.
  regex::Regex Substitute(const regex::Regex& alpha) const;

  std::string ToString() const;  // "α", "0xα", "desc.*", ...

 private:
  TypeExpr() = default;
  Kind kind_ = Kind::kVar;
  std::optional<regex::Regex> lang_;
  std::vector<TypeExpr> parts_;
};

// A (possibly polymorphic) command type: ∀α [⊆ bound]. input → output.
// Monomorphic types simply do not mention α.
struct CommandType {
  bool polymorphic = false;
  std::optional<regex::Regex> bound;  // Constraint α ⊆ bound.
  TypeExpr input = TypeExpr::Lang(regex::Regex::AnyLine());
  TypeExpr output = TypeExpr::Lang(regex::Regex::AnyLine());

  // Special composition rule used by filters whose output is the matching
  // subset of the input (grep): output = input ∩ `filter`. When set, `output`
  // is ignored during application.
  std::optional<regex::Regex> intersect_filter;

  std::string ToString() const;  // "∀α ⊆ B. α → 0xα" / ".* → desc.*".
};

// Applying a command type to a concrete input line-language.
struct ApplyResult {
  bool ok = false;
  std::string error;                   // Type error description.
  std::optional<regex::Regex> output;  // Output line-language when ok.
  bool output_empty = false;           // The output language is empty.
};

// Checks input against the type and computes the output language:
//  - polymorphic with input α: α := input; require α ⊆ bound when given.
//  - monomorphic: require input ⊆ L(input) (subsumption), output as declared.
//  - intersect_filter: output = input ∩ filter.
// An empty input language propagates to an empty output (dead stream).
ApplyResult Apply(const CommandType& type, const regex::Regex& input);

// The extensible library of descriptive types (§4 "ergonomic annotations"):
// `any` for .*, `url` for inputs to curl, `longlist` for ls -l output, etc.
class TypeLibrary {
 public:
  // Registers (or replaces) a named line type.
  void Define(std::string name, regex::Regex lang);
  const regex::Regex* Find(std::string_view name) const;
  std::vector<std::string> Names() const;

  // Resolves a type spelling: a library name or an inline /pattern/ regex.
  std::optional<regex::Regex> Resolve(std::string_view spelling) const;

  // Built-in descriptive types: any, none, empty, line, word, number, hexline,
  // path, abspath, url, tsvline, longlist, lsbline.
  static TypeLibrary Default();

 private:
  std::vector<std::pair<std::string, regex::Regex>> types_;
};

// typeOf introspection (§4): the most specific library name whose language
// equals (or, failing that, the first that contains) the given language.
std::string TypeOf(const TypeLibrary& lib, const regex::Regex& lang);

}  // namespace sash::rtypes

#endif  // SASH_RTYPES_TYPES_H_
