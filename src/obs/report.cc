#include "obs/report.h"

namespace sash::obs {

std::string BenchReportJson(std::string_view bench_name, const std::vector<BenchRun>& runs,
                            const Registry* metrics, int64_t peak_rss_kb) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema", kBenchSchema);
  w.KV("bench", bench_name);
  w.Key("runs").BeginArray();
  for (const BenchRun& r : runs) {
    w.BeginObject();
    w.KV("name", r.name);
    w.KV("iterations", r.iterations);
    w.KV("real_time_ns", r.real_time_ns);
    w.KV("cpu_time_ns", r.cpu_time_ns);
    w.EndObject();
  }
  w.EndArray();
  // Cache effectiveness is a first-class bench result (the warm-path story):
  // surfaced at the top level, mirroring the registry's cache.* counters.
  MetricsSnapshot snapshot = metrics != nullptr ? metrics->Snapshot() : MetricsSnapshot{};
  auto counter_or_zero = [&snapshot](const char* name) {
    auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? int64_t{0} : it->second;
  };
  w.Key("cache").BeginObject();
  w.KV("hits", counter_or_zero("cache.hits"));
  w.KV("misses", counter_or_zero("cache.misses"));
  w.EndObject();
  w.KV("peak_rss_kb", peak_rss_kb);
  w.Key("metrics");
  WriteSnapshotJson(snapshot, &w);
  w.EndObject();
  return w.Take();
}

namespace {

void RequireNumberMembers(const JsonValue& obj, std::string_view where,
                          const std::vector<std::string>& keys, std::vector<std::string>* out) {
  for (const std::string& key : keys) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || !v->is_number()) {
      out->push_back(std::string(where) + ": missing or non-numeric '" + key + "'");
    }
  }
}

}  // namespace

std::vector<std::string> ValidateBenchReport(const JsonValue& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.push_back("document is not a JSON object");
    return problems;
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != kBenchSchema) {
    problems.push_back(std::string("schema must be \"") + kBenchSchema + "\"");
  }
  const JsonValue* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    problems.push_back("bench must be a non-empty string");
  }
  const JsonValue* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    problems.push_back("runs must be an array");
  } else {
    for (size_t i = 0; i < runs->array.size(); ++i) {
      const JsonValue& run = runs->array[i];
      std::string where = "runs[" + std::to_string(i) + "]";
      if (!run.is_object()) {
        problems.push_back(where + " is not an object");
        continue;
      }
      const JsonValue* name = run.Find("name");
      if (name == nullptr || !name->is_string() || name->string.empty()) {
        problems.push_back(where + ": name must be a non-empty string");
      }
      RequireNumberMembers(run, where, {"iterations", "real_time_ns", "cpu_time_ns"}, &problems);
    }
  }
  const JsonValue* cache = doc.Find("cache");
  if (cache == nullptr || !cache->is_object()) {
    problems.push_back("cache must be an object");
  } else {
    RequireNumberMembers(*cache, "cache", {"hits", "misses"}, &problems);
  }
  const JsonValue* rss = doc.Find("peak_rss_kb");
  if (rss == nullptr || !rss->is_number()) {
    problems.push_back("peak_rss_kb must be a number");
  }
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    problems.push_back("metrics must be an object");
  } else {
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const JsonValue* sec = metrics->Find(section);
      if (sec == nullptr || !sec->is_object()) {
        problems.push_back(std::string("metrics.") + section + " must be an object");
        continue;
      }
      for (const auto& [name, value] : sec->object) {
        if (std::string_view(section) == "histograms") {
          if (!value.is_object()) {
            problems.push_back("metrics.histograms." + name + " is not an object");
            continue;
          }
          RequireNumberMembers(value, "metrics.histograms." + name,
                               {"count", "sum", "min", "max", "p50", "p90", "p99"}, &problems);
        } else if (!value.is_number()) {
          problems.push_back(std::string("metrics.") + section + "." + name + " is not numeric");
        }
      }
    }
  }
  return problems;
}

}  // namespace sash::obs
