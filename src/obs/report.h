// The machine-readable bench report: schema "sash-bench-v1". Each bench
// binary emits one BENCH_<name>.json so the perf trajectory can be tracked
// run over run, and a schema validator (pure C++, used from ctest) keeps the
// emitters honest.
#ifndef SASH_OBS_REPORT_H_
#define SASH_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace sash::obs {

inline constexpr char kBenchSchema[] = "sash-bench-v1";

// One timing-loop result within a bench binary.
struct BenchRun {
  std::string name;
  int64_t iterations = 0;
  double real_time_ns = 0;  // Wall time per iteration.
  double cpu_time_ns = 0;
};

// Serializes {"schema","bench","runs":[...],"cache":{"hits","misses"},
// "peak_rss_kb":N,"metrics":{...}}. The cache object mirrors the registry's
// "cache.hits" / "cache.misses" counters (zero when absent). `metrics` may be
// null (emitted as an empty snapshot with a zero cache object). `peak_rss_kb`
// is the process peak resident set in KiB (0 when unknown).
std::string BenchReportJson(std::string_view bench_name, const std::vector<BenchRun>& runs,
                            const Registry* metrics, int64_t peak_rss_kb = 0);

// Validates a parsed bench report against the schema; returns human-readable
// problems, empty when the document conforms.
std::vector<std::string> ValidateBenchReport(const JsonValue& doc);

}  // namespace sash::obs

#endif  // SASH_OBS_REPORT_H_
