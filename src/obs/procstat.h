// Process memory introspection and the periodic RSS sampler. PR 4 recorded
// peak RSS once at bench exit; the sampler makes the resident set a live
// counter track in the Chrome trace and a gauge in the metrics registry, so
// the trace, the journal, and the bench JSON all agree on where memory went
// during a batch run, not just where it ended.
#ifndef SASH_OBS_PROCSTAT_H_
#define SASH_OBS_PROCSTAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/obs.h"

namespace sash::obs {

// Current resident set in KiB (VmRSS on Linux); 0 when unavailable.
int64_t CurrentRssKb();

// Peak resident set in KiB (VmHWM on Linux, getrusage fallback); 0 when
// unavailable.
int64_t PeakRssKb();

// Samples RSS (and optionally a couple of registry counters) on a background
// thread for the lifetime of the object. Each sample updates the
// "process.rss_kb" gauge, raises "process.peak_rss_kb", appends to the
// tracer's "rss_kb" counter track, and journals an rss event. One sample is
// taken immediately on construction and one on destruction, so even runs
// shorter than the period get endpoints.
class RssSampler {
 public:
  // Any Hooks member may be null; a sampler with nothing attached is inert.
  explicit RssSampler(Hooks hooks, int period_ms = 25);
  ~RssSampler();
  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

 private:
  void SampleOnce();

  Hooks hooks_;
  Gauge* rss_gauge_ = nullptr;
  Gauge* peak_gauge_ = nullptr;
  Counter* cache_hits_ = nullptr;   // Sampled into the "cache.hits" track.
  int period_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace sash::obs

#endif  // SASH_OBS_PROCSTAT_H_
