// Minimal JSON support for the observability layer: a streaming writer used
// to emit machine-readable reports (analysis JSON, bench JSON, Chrome traces)
// and a small recursive-descent parser used to validate them — no external
// dependencies, by design (this repo vendors nothing).
#ifndef SASH_OBS_JSON_H_
#define SASH_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sash::obs {

// Escapes `s` for placement between JSON double quotes.
std::string JsonEscape(std::string_view s);

// A streaming JSON writer with automatic comma management. Structural calls
// must balance; keys must precede values inside objects. Misuse is a
// programming error (unbalanced output), not a runtime check.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices `json` — which must itself be one complete, valid JSON value —
  // into the output verbatim, with normal comma management. This is how the
  // batch layer embeds cached report documents byte-identically.
  JsonWriter& Raw(std::string_view json);

  // Shorthand: Key(k) followed by the value.
  JsonWriter& KV(std::string_view key, std::string_view value) { return Key(key).String(value); }
  JsonWriter& KV(std::string_view key, const char* value) { return Key(key).String(value); }
  JsonWriter& KV(std::string_view key, int64_t value) { return Key(key).Int(value); }
  JsonWriter& KV(std::string_view key, int value) { return Key(key).Int(value); }
  JsonWriter& KV(std::string_view key, double value) { return Key(key).Double(value); }
  JsonWriter& KV(std::string_view key, bool value) { return Key(key).Bool(value); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

// A parsed JSON document. Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Parses a complete document; nullopt on any syntax error or trailing
  // garbage.
  static std::optional<JsonValue> Parse(std::string_view text);
};

// Re-serializes a parsed value through `w` (member order preserved). Numbers
// that are integral round-trip without a decimal point.
void WriteJsonValue(const JsonValue& value, JsonWriter* w);


}  // namespace sash::obs

#endif  // SASH_OBS_JSON_H_
