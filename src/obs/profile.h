// Post-processing for profile runs: flamegraph folding of tracer spans,
// lock-site summaries into the journal, and the aggregation behind
// `sash report` (top contended sites, per-worker utilization, per-phase
// breakdown). Everything here runs after the workload, off the hot path.
#ifndef SASH_OBS_PROFILE_H_
#define SASH_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/journal.h"
#include "obs/trace.h"

namespace sash::obs {

// Folds completed spans into collapsed-stack ("flamegraph") lines:
// "parse;expand;symex 1234" where the count is *self* microseconds (the
// span's duration minus its direct children). Stacks are reconstructed per
// thread from the recorded nesting depth; identical stacks are merged and
// output sorted by stack name for determinism.
std::string CollapsedStacks(const std::vector<TraceEvent>& events);

// Emits one kLockSite summary event per registered probe site into
// `journal` (a=wait_ns, b=hold_ns, c=acquisitions, d=contended), so a
// journal file carries the end-of-run contention totals even when the
// per-wait events were dropped by ring overwrite. Null journal is a no-op.
void JournalLockSites(EventJournal* journal);

// Aggregated view of one journal, built either from in-memory events or a
// parsed sash-events-v1 JSONL document.
struct JournalSummary {
  struct Site {
    std::string name;
    int64_t wait_ns = 0;
    int64_t hold_ns = 0;
    int64_t acquisitions = 0;
    int64_t contended = 0;
  };
  struct Worker {
    int64_t worker = 0;     // Worker index within the pool.
    int64_t busy_us = 0;    // Sum of task durations.
    int64_t tasks = 0;
    int64_t steals = 0;
  };

  std::vector<Site> sites;                 // Sorted by wait_ns, descending.
  std::vector<Worker> workers;             // Sorted by worker index.
  std::map<std::string, int64_t> phase_us; // Phase name -> total microseconds.
  int64_t span_us = 0;                     // Largest event timestamp seen.
  int64_t peak_rss_kb = 0;
  int64_t lock_wait_events = 0;            // Individual kLockWait events kept.
  int64_t emitted = 0;                     // From the header, when parsed.
  int64_t dropped = 0;                     // From the header, when parsed.
};

// Aggregates in-memory events (e.g. straight from EventJournal::Drain()).
JournalSummary SummarizeEvents(const std::vector<Event>& events);

// Parses and aggregates a sash-events-v1 JSONL document. Returns nullopt on
// malformed input; if `problems` is non-null it receives the validator's
// diagnostics either way.
std::optional<JournalSummary> SummarizeJsonl(std::string_view text,
                                             std::vector<std::string>* problems = nullptr);

// Renders the human-readable report printed by `sash report`: top contended
// sites by total wait, per-worker utilization against the run's wall span,
// and the per-phase time breakdown.
std::string FormatReport(const JournalSummary& summary);

}  // namespace sash::obs

#endif  // SASH_OBS_PROFILE_H_
