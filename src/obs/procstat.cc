#include "obs/procstat.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sash::obs {

namespace {

// Reads a "Key:   <n> kB" line from /proc/self/status; -1 when absent.
int64_t ProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  int64_t value = -1;
  char line[256];
  size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      long long kb = 0;
      if (std::sscanf(line + key_len + 1, "%lld", &kb) == 1) {
        value = kb;
      }
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

int64_t CurrentRssKb() {
  int64_t kb = ProcStatusKb("VmRSS");
  return kb > 0 ? kb : 0;
}

int64_t PeakRssKb() {
  int64_t kb = ProcStatusKb("VmHWM");
  if (kb > 0) {
    return kb;
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // Bytes on macOS.
#else
    return usage.ru_maxrss;  // Already KiB on Linux.
#endif
  }
#endif
  return 0;
}

RssSampler::RssSampler(Hooks hooks, int period_ms)
    : hooks_(hooks), period_ms_(period_ms > 0 ? period_ms : 25) {
  if (hooks_.metrics != nullptr) {
    rss_gauge_ = hooks_.metrics->gauge("process.rss_kb");
    peak_gauge_ = hooks_.metrics->gauge("process.peak_rss_kb");
    cache_hits_ = hooks_.metrics->counter("cache.hits");
  }
  SampleOnce();
  if (hooks_.enabled()) {
    thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(period_ms_), [this] { return stop_; });
        if (stop_) {
          break;
        }
        lock.unlock();
        SampleOnce();
        lock.lock();
      }
    });
  }
}

RssSampler::~RssSampler() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  SampleOnce();  // Final sample so short runs still get an endpoint.
}

void RssSampler::SampleOnce() {
  int64_t rss = CurrentRssKb();
  if (rss <= 0) {
    return;
  }
  if (rss_gauge_ != nullptr) {
    rss_gauge_->Set(rss);
  }
  if (peak_gauge_ != nullptr) {
    peak_gauge_->Max(rss);
  }
  if (hooks_.tracer != nullptr) {
    int64_t ts = hooks_.tracer->NowMicros();
    hooks_.tracer->RecordCounter("rss_kb", ts, rss);
    if (cache_hits_ != nullptr) {
      hooks_.tracer->RecordCounter("cache.hits", ts, cache_hits_->value());
    }
  }
  if (hooks_.journal != nullptr) {
    hooks_.journal->Emit(EventKind::kRss, "process.rss_kb", rss);
  }
}

}  // namespace sash::obs
