// A bounded, lock-free ring-buffer event journal. Producers (lock probes,
// thread-pool workers, the RSS sampler, analyzer phase boundaries) emit
// fixed-size events with a fetch_add and a handful of relaxed stores; when
// the buffer wraps, the oldest events are overwritten and counted as
// dropped. The journal is drained after the workload quiesces and flushed
// as JSONL under the "sash-events-v1" schema (`sash profile --journal`,
// `sash analyze --journal`).
//
// Event names must have static storage duration (string literals): the hot
// path stores the pointer, never copies, never allocates.
//
// JSONL layout: the first line is a header object
//   {"schema":"sash-events-v1","sash":"<version>","capacity":N,
//    "emitted":N,"dropped":N}
// and every following line is one event
//   {"ev":"lock_wait","seq":12,"ts_us":345,"tid":2,"name":"intern.table",
//    "a":125000,"b":0,"c":0,"d":0}
// Field meanings per kind are documented at EventKind. ValidateJsonl() is
// the schema check used by tests, `sash_check_bench_json --journal`, and CI.
#ifndef SASH_OBS_JOURNAL_H_
#define SASH_OBS_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sash::obs {

enum class EventKind : uint8_t {
  kLockWait = 0,    // a=wait_ns on a contended acquisition of site `name`.
  kLockSite,        // End-of-run site summary: a=wait_ns b=hold_ns
                    // c=acquisitions d=contended.
  kTaskStart,       // Pool worker picked up a task: a=worker index
                    // b=global queue depth after the pop.
  kTaskStop,        // Task finished: a=worker index b=task duration (us).
  kSteal,           // a=thief worker index.
  kQueueDepth,      // a=global queued tasks (sampled on submit).
  kRss,             // a=current RSS KiB, b=peak RSS KiB.
  kPhase,           // Analyzer phase completed: name=phase, a=micros.
  kCounter,         // Sampled registry counter: name, a=value.
  kMark,            // Free-form annotation (profile start/stop, ...).
};

// Stable wire names ("lock_wait", "task_start", ...). Unknown kinds render
// as "?" and fail validation.
std::string_view EventKindName(EventKind kind);

struct Event {
  int64_t ts_us = 0;      // Microseconds since the journal's construction.
  uint64_t seq = 0;       // Global emission order (monotonic, gap-free).
  uint32_t tid = 0;       // Dense per-thread id (same space as trace spans).
  EventKind kind = EventKind::kMark;
  const char* name = "";  // Static string; site/phase/counter identity.
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  int64_t d = 0;
};

class EventJournal {
 public:
  // `capacity` is rounded up to a power of two (minimum 1024).
  explicit EventJournal(size_t capacity = size_t{1} << 16);
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;
  ~EventJournal();

  // Lock-free, wait-free emission (one fetch_add + stores). Safe from any
  // thread. `name` must outlive the journal (use string literals).
  void Emit(EventKind kind, const char* name, int64_t a = 0, int64_t b = 0, int64_t c = 0,
            int64_t d = 0);

  int64_t emitted() const { return static_cast<int64_t>(cursor_.load(std::memory_order_relaxed)); }
  int64_t dropped() const;  // Events overwritten by wrap-around.
  size_t capacity() const { return capacity_; }
  int64_t NowMicros() const;

  // Surviving events in emission order (oldest first). Call only after
  // producers have quiesced; concurrent emission may tear in-flight slots
  // (they are skipped via their sequence stamps).
  std::vector<Event> Drain() const;

  // JSONL serialization (header line + one line per drained event).
  std::string ToJsonl() const;
  bool WriteJsonl(const std::string& path) const;

  // Validates a JSONL document against sash-events-v1. Returns human-
  // readable problems; empty when conforming.
  static std::vector<std::string> ValidateJsonl(std::string_view text);

  // The process-global journal the probe layer emits into (null = journaling
  // off, one relaxed load per probe). Not owning.
  static void SetGlobal(EventJournal* journal) {
    global_.store(journal, std::memory_order_release);
  }
  static EventJournal* Global() { return global_.load(std::memory_order_acquire); }

 private:
  struct Slot {
    // kEmpty until first write; then the event's seq (release-published
    // after the payload so Drain can detect half-written slots).
    std::atomic<uint64_t> stamp{kEmpty};
    Event event;
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  size_t capacity_;  // Power of two.
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
  std::chrono::steady_clock::time_point epoch_;

  static std::atomic<EventJournal*> global_;
};

inline constexpr char kEventsSchema[] = "sash-events-v1";

}  // namespace sash::obs

#endif  // SASH_OBS_JOURNAL_H_
