#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <set>

#include "obs/json.h"
#include "obs/lockprobe.h"

namespace sash::obs {

namespace {

// An open span on the per-thread reconstruction stack.
struct OpenFrame {
  std::string path;        // "a;b;c" up to and including this span.
  int64_t duration_us = 0;
  int64_t child_us = 0;    // Time covered by direct children.
};

// Shared accumulator for both the in-memory and the parsed-JSONL paths.
class JournalAccumulator {
 public:
  void Add(std::string_view ev, std::string_view name, int64_t ts_us, int64_t a, int64_t b,
           int64_t c, int64_t d) {
    summary_.span_us = std::max(summary_.span_us, ts_us);
    if (ev == "lock_site") {
      JournalSummary::Site& site = SiteFor(name);
      site.wait_ns = a;
      site.hold_ns = b;
      site.acquisitions = c;
      site.contended = d;
    } else if (ev == "lock_wait") {
      ++summary_.lock_wait_events;
      // Individual waits only contribute when no end-of-run summary event
      // later overwrites the site with authoritative totals.
      if (summarized_.count(std::string(name)) == 0) {
        SiteFor(name).wait_ns += a;
      }
    } else if (ev == "task_stop") {
      JournalSummary::Worker& w = WorkerFor(a);
      w.busy_us += b;
      ++w.tasks;
    } else if (ev == "task_start") {
      WorkerFor(a);  // Make the worker visible even if its task never ends.
    } else if (ev == "steal") {
      ++WorkerFor(a).steals;
    } else if (ev == "phase") {
      summary_.phase_us[std::string(name)] += a;
    } else if (ev == "rss") {
      // a = current RSS at the sample, b = the kernel's high-water mark;
      // either may lead depending on when the sampler last fired.
      summary_.peak_rss_kb = std::max({summary_.peak_rss_kb, a, b});
    }
    if (ev == "lock_site") {
      summarized_.insert(std::string(name));
    }
  }

  JournalSummary Take() {
    std::sort(summary_.sites.begin(), summary_.sites.end(),
              [](const JournalSummary::Site& x, const JournalSummary::Site& y) {
                if (x.wait_ns != y.wait_ns) {
                  return x.wait_ns > y.wait_ns;
                }
                return x.name < y.name;
              });
    std::sort(summary_.workers.begin(), summary_.workers.end(),
              [](const JournalSummary::Worker& x, const JournalSummary::Worker& y) {
                return x.worker < y.worker;
              });
    return std::move(summary_);
  }

  void SetHeader(int64_t emitted, int64_t dropped) {
    summary_.emitted = emitted;
    summary_.dropped = dropped;
  }

 private:
  JournalSummary::Site& SiteFor(std::string_view name) {
    for (JournalSummary::Site& s : summary_.sites) {
      if (s.name == name) {
        return s;
      }
    }
    summary_.sites.emplace_back();
    summary_.sites.back().name = std::string(name);
    return summary_.sites.back();
  }

  JournalSummary::Worker& WorkerFor(int64_t index) {
    for (JournalSummary::Worker& w : summary_.workers) {
      if (w.worker == index) {
        return w;
      }
    }
    summary_.workers.emplace_back();
    summary_.workers.back().worker = index;
    return summary_.workers.back();
  }

  JournalSummary summary_;
  std::set<std::string> summarized_;  // Sites with authoritative lock_site totals.
};

void FoldFrame(std::map<std::string, int64_t>* folded, const OpenFrame& frame) {
  int64_t self = frame.duration_us - frame.child_us;
  if (self < 0) {
    self = 0;
  }
  (*folded)[frame.path] += self;
}

std::string FormatMs(int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(us) / 1000.0);
  return buf;
}

}  // namespace

std::string CollapsedStacks(const std::vector<TraceEvent>& events) {
  // Events() is sorted by start time with parents before same-microsecond
  // children, so a per-thread stack keyed by depth reconstructs the nesting.
  std::map<std::string, int64_t> folded;
  std::map<uint32_t, std::vector<OpenFrame>> stacks;
  for (const TraceEvent& e : events) {
    std::vector<OpenFrame>& stack = stacks[e.tid];
    // Anything at this depth or deeper has ended (spans at one depth on one
    // thread cannot overlap).
    while (static_cast<int>(stack.size()) > e.depth) {
      FoldFrame(&folded, stack.back());
      stack.pop_back();
    }
    OpenFrame frame;
    frame.path = stack.empty() ? e.name : stack.back().path + ";" + e.name;
    frame.duration_us = e.duration_us;
    if (!stack.empty()) {
      stack.back().child_us += e.duration_us;
    }
    stack.push_back(std::move(frame));
  }
  for (auto& [tid, stack] : stacks) {
    while (!stack.empty()) {
      FoldFrame(&folded, stack.back());
      stack.pop_back();
    }
  }
  std::string out;
  for (const auto& [path, self_us] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(self_us);
    out += '\n';
  }
  return out;
}

void JournalLockSites(EventJournal* journal) {
  if (journal == nullptr) {
    return;
  }
  for (const LockSiteSnapshot& s : LockProbes::Snapshot()) {
    // Names come from LockProbes::Register(const char*), so the pointer in
    // the snapshot's string is not static — but the registered site list is
    // leaked and stable, so re-emit via the site registry's storage. The
    // snapshot keeps its own copy; emit with the snapshot's c_str() is unsafe
    // after it dies, so journal consumers must drain before the snapshot
    // goes away. Drain happens inside ToJsonl immediately after in practice;
    // to be safe, intern through a static pool here.
    static std::mutex pool_mu;
    static std::set<std::string>* pool = new std::set<std::string>();
    const char* stable_name = nullptr;
    {
      std::lock_guard<std::mutex> lock(pool_mu);
      stable_name = pool->insert(s.name).first->c_str();
    }
    journal->Emit(EventKind::kLockSite, stable_name, s.wait_ns, s.hold_ns, s.acquisitions,
                  s.contended);
  }
}

JournalSummary SummarizeEvents(const std::vector<Event>& events) {
  JournalAccumulator acc;
  for (const Event& e : events) {
    acc.Add(EventKindName(e.kind), e.name != nullptr ? e.name : "?", e.ts_us, e.a, e.b, e.c, e.d);
  }
  return acc.Take();
}

std::optional<JournalSummary> SummarizeJsonl(std::string_view text,
                                             std::vector<std::string>* problems) {
  std::vector<std::string> local = EventJournal::ValidateJsonl(text);
  if (problems != nullptr) {
    *problems = local;
  }
  if (!local.empty()) {
    return std::nullopt;
  }
  JournalAccumulator acc;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) {
      continue;
    }
    ++line_no;
    std::optional<JsonValue> doc = JsonValue::Parse(line);
    if (!doc.has_value()) {
      continue;  // Validator already passed, so this should not happen.
    }
    if (line_no == 1) {
      const JsonValue* emitted = doc->Find("emitted");
      const JsonValue* dropped = doc->Find("dropped");
      acc.SetHeader(emitted != nullptr ? static_cast<int64_t>(emitted->number) : 0,
                    dropped != nullptr ? static_cast<int64_t>(dropped->number) : 0);
      continue;
    }
    auto num = [&doc](const char* key) -> int64_t {
      const JsonValue* v = doc->Find(key);
      return v != nullptr && v->is_number() ? static_cast<int64_t>(v->number) : 0;
    };
    const JsonValue* ev = doc->Find("ev");
    const JsonValue* name = doc->Find("name");
    acc.Add(ev->string, name->string, num("ts_us"), num("a"), num("b"), num("c"), num("d"));
  }
  return acc.Take();
}

std::string FormatReport(const JournalSummary& summary) {
  std::string out;
  out += "== contention ==\n";
  if (summary.sites.empty()) {
    out += "  (no lock sites recorded)\n";
  }
  int rank = 0;
  for (const JournalSummary::Site& s : summary.sites) {
    if (++rank > 10) {
      break;
    }
    out += "  " + std::to_string(rank) + ". " + s.name + "  wait=" + FormatMs(s.wait_ns / 1000) +
           "ms";
    if (s.acquisitions > 0) {
      out += "  hold=" + FormatMs(s.hold_ns / 1000) + "ms  acq=" + std::to_string(s.acquisitions) +
             "  contended=" + std::to_string(s.contended);
    }
    out += "\n";
  }
  out += "== workers ==\n";
  if (summary.workers.empty()) {
    out += "  (no worker events)\n";
  }
  for (const JournalSummary::Worker& w : summary.workers) {
    double util = summary.span_us > 0
                      ? 100.0 * static_cast<double>(w.busy_us) / static_cast<double>(summary.span_us)
                      : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  worker %lld: %5.1f%% busy  tasks=%lld  steals=%lld  busy=%sms\n",
                  static_cast<long long>(w.worker), util, static_cast<long long>(w.tasks),
                  static_cast<long long>(w.steals), FormatMs(w.busy_us).c_str());
    out += line;
  }
  out += "== phases ==\n";
  if (summary.phase_us.empty()) {
    out += "  (no phase events)\n";
  }
  int64_t total_phase_us = 0;
  for (const auto& [name, us] : summary.phase_us) {
    total_phase_us += us;
  }
  for (const auto& [name, us] : summary.phase_us) {
    double pct = total_phase_us > 0
                     ? 100.0 * static_cast<double>(us) / static_cast<double>(total_phase_us)
                     : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "  %-12s %sms (%4.1f%%)\n", name.c_str(),
                  FormatMs(us).c_str(), pct);
    out += line;
  }
  out += "== run ==\n";
  out += "  wall span: " + FormatMs(summary.span_us) + "ms\n";
  if (summary.peak_rss_kb > 0) {
    out += "  peak rss: " + std::to_string(summary.peak_rss_kb) + " kB\n";
  }
  if (summary.emitted > 0) {
    out += "  journal: " + std::to_string(summary.emitted) + " events emitted, " +
           std::to_string(summary.dropped) + " dropped\n";
  }
  return out;
}

}  // namespace sash::obs
