// Umbrella header for the observability subsystem, plus the Hooks bundle the
// analysis pipeline threads through its layers. Both pointers are optional
// and non-owning; a default-constructed Hooks disables everything at the cost
// of one branch per instrumentation site.
#ifndef SASH_OBS_OBS_H_
#define SASH_OBS_OBS_H_

#include "obs/journal.h"
#include "obs/json.h"
#include "obs/lockprobe.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sash::obs {

struct Hooks {
  Tracer* tracer = nullptr;
  Registry* metrics = nullptr;
  EventJournal* journal = nullptr;

  bool enabled() const { return tracer != nullptr || metrics != nullptr || journal != nullptr; }
};

}  // namespace sash::obs

#endif  // SASH_OBS_OBS_H_
