#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <fstream>

#include "obs/json.h"

namespace sash::obs {

// Dense per-thread ids so exported traces (and journal events) have small,
// stable tid values; one sequence for the whole process.
uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

// Per-thread span nesting depth. Indexed implicitly by being thread_local.
thread_local int tls_span_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               epoch_)
      .count();
}

void Tracer::Record(std::string name, int64_t start_us, int64_t duration_us, uint32_t tid,
                    int depth) {
  TraceEvent e;
  e.name = std::move(name);
  e.start_us = start_us;
  e.duration_us = duration_us;
  e.tid = tid;
  e.depth = depth;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::RecordCounter(std::string_view name, int64_t ts_us, int64_t value) {
  CounterEvent e;
  e.name = name;
  e.ts_us = ts_us;
  e.value = value;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(std::move(e));
}

void Tracer::SetThreadName(uint32_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing_tid, existing_name] : thread_names_) {
    if (existing_tid == tid) {
      existing_name = std::move(name);
      return;
    }
  }
  thread_names_.emplace_back(tid, std::move(name));
}

std::vector<CounterEvent> Tracer::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  // Ties (sub-microsecond spans) resolve by depth so a parent precedes the
  // children that started within the same microsecond.
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_us != b.start_us) {
      return a.start_us < b.start_us;
    }
    return a.depth < b.depth;
  });
  return out;
}

std::string Tracer::ToChromeJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : Events()) {
    w.BeginObject();
    w.KV("name", e.name);
    w.KV("ph", "X");  // Complete event: ts + dur.
    w.KV("ts", e.start_us);
    w.KV("dur", e.duration_us);
    w.KV("pid", int64_t{1});
    w.KV("tid", static_cast<int64_t>(e.tid));
    w.Key("args").BeginObject().KV("depth", int64_t{e.depth}).EndObject();
    w.EndObject();
  }
  for (const CounterEvent& c : Counters()) {
    w.BeginObject();
    w.KV("name", c.name);
    w.KV("ph", "C");  // Counter track sample.
    w.KV("ts", c.ts_us);
    w.KV("pid", int64_t{1});
    w.KV("tid", int64_t{0});
    w.Key("args").BeginObject().KV("value", c.value).EndObject();
    w.EndObject();
  }
  {
    std::vector<std::pair<uint32_t, std::string>> names;
    {
      std::lock_guard<std::mutex> lock(mu_);
      names = thread_names_;
    }
    for (const auto& [tid, name] : names) {
      w.BeginObject();
      w.KV("name", "thread_name");
      w.KV("ph", "M");  // Metadata: labels the tid's lane in the viewer.
      w.KV("pid", int64_t{1});
      w.KV("tid", static_cast<int64_t>(tid));
      w.Key("args").BeginObject().KV("name", name).EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return w.Take();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << ToChromeJson() << '\n';
  return static_cast<bool>(out);
}

Span::Span(Tracer* tracer, std::string_view name) : tracer_(tracer) {
  if (tracer_ == nullptr) {
    return;
  }
  name_ = name;
  start_us_ = tracer_->NowMicros();
  depth_ = tls_span_depth++;
}

void Span::End() {
  if (tracer_ == nullptr) {
    return;
  }
  int64_t end_us = tracer_->NowMicros();
  --tls_span_depth;
  tracer_->Record(std::move(name_), start_us_, end_us - start_us_, CurrentThreadId(), depth_);
  tracer_ = nullptr;
}

}  // namespace sash::obs
