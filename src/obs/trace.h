// Span-based tracing with Chrome-tracing JSON export. A Span is an RAII
// region timed against the monotonic clock; spans nest per thread and the
// export is loadable by chrome://tracing and Perfetto (ui.perfetto.dev).
//
//   obs::Tracer tracer;
//   {
//     obs::Span span(&tracer, "symex");   // null tracer -> single branch,
//     ...                                 // no clock read, nothing recorded
//   }
//   tracer.WriteChromeJson("trace.json");
#ifndef SASH_OBS_TRACE_H_
#define SASH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sash::obs {

// One completed span, in microseconds relative to the tracer's epoch.
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  uint32_t tid = 0;   // Stable per-thread id (dense, assigned on first span).
  int depth = 0;      // Nesting depth within the thread at entry, 0-based.
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since this tracer was constructed (monotonic clock).
  int64_t NowMicros() const;

  void Record(std::string name, int64_t start_us, int64_t duration_us, uint32_t tid, int depth);

  // Copy of all recorded events, sorted by start time.
  std::vector<TraceEvent> Events() const;

  // Chrome trace-event format: {"traceEvents":[{"ph":"X",...},...]}.
  std::string ToChromeJson() const;

  // Writes ToChromeJson() to `path`; false on I/O error.
  bool WriteChromeJson(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII timed region. With a null tracer every member is a no-op (the
// disabled-path cost is one branch; not even the clock is read).
class Span {
 public:
  Span(Tracer* tracer, std::string_view name);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early; subsequent calls (and the destructor) are no-ops.
  void End();

 private:
  Tracer* tracer_;
  std::string name_;
  int64_t start_us_ = 0;
  int depth_ = 0;
};

// A plain monotonic stopwatch for always-on phase timing (independent of any
// tracer; used where the timing itself is the product, e.g. PhaseTimings).
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sash::obs

#endif  // SASH_OBS_TRACE_H_
