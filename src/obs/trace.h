// Span-based tracing with Chrome-tracing JSON export. A Span is an RAII
// region timed against the monotonic clock; spans nest per thread and the
// export is loadable by chrome://tracing and Perfetto (ui.perfetto.dev).
//
//   obs::Tracer tracer;
//   {
//     obs::Span span(&tracer, "symex");   // null tracer -> single branch,
//     ...                                 // no clock read, nothing recorded
//   }
//   tracer.WriteChromeJson("trace.json");
#ifndef SASH_OBS_TRACE_H_
#define SASH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sash::obs {

// The dense per-process thread id used across every export surface: trace
// span lanes, the event journal, and thread-name metadata all draw from this
// one sequence, so a given OS thread has the same id everywhere.
uint32_t CurrentThreadId();

// One completed span, in microseconds relative to the tracer's epoch.
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  uint32_t tid = 0;   // Stable per-thread id (dense, assigned on first span).
  int depth = 0;      // Nesting depth within the thread at entry, 0-based.
};

// One sample on a counter track (Chrome "C" event): queue depth, cache
// hits, RSS — rendered by Perfetto as a stacked area chart.
struct CounterEvent {
  std::string name;
  int64_t ts_us = 0;
  int64_t value = 0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since this tracer was constructed (monotonic clock).
  int64_t NowMicros() const;

  void Record(std::string name, int64_t start_us, int64_t duration_us, uint32_t tid, int depth);

  // Appends one sample to the named counter track ("C" phase in the Chrome
  // export). Thread-safe; cheap enough for periodic samplers, not for loops.
  void RecordCounter(std::string_view name, int64_t ts_us, int64_t value);

  // Names a thread's lane in the export ("M"/thread_name metadata), e.g.
  // "worker-3". Last write per tid wins.
  void SetThreadName(uint32_t tid, std::string name);

  // Copy of all recorded events, sorted by start time.
  std::vector<TraceEvent> Events() const;

  // Copy of all counter samples, in recording order.
  std::vector<CounterEvent> Counters() const;

  // Chrome trace-event format: {"traceEvents":[{"ph":"X",...},...]}.
  std::string ToChromeJson() const;

  // Writes ToChromeJson() to `path`; false on I/O error.
  bool WriteChromeJson(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<CounterEvent> counters_;
  std::vector<std::pair<uint32_t, std::string>> thread_names_;
};

// RAII timed region. With a null tracer every member is a no-op (the
// disabled-path cost is one branch; not even the clock is read).
class Span {
 public:
  Span(Tracer* tracer, std::string_view name);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early; subsequent calls (and the destructor) are no-ops.
  void End();

 private:
  Tracer* tracer_;
  std::string name_;
  int64_t start_us_ = 0;
  int depth_ = 0;
};

// A plain monotonic stopwatch for always-on phase timing (independent of any
// tracer; used where the timing itself is the product, e.g. PhaseTimings).
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sash::obs

#endif  // SASH_OBS_TRACE_H_
