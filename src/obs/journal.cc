#include "obs/journal.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/json.h"
#include "obs/trace.h"

namespace sash::obs {

std::atomic<EventJournal*> EventJournal::global_{nullptr};

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kLockWait:
      return "lock_wait";
    case EventKind::kLockSite:
      return "lock_site";
    case EventKind::kTaskStart:
      return "task_start";
    case EventKind::kTaskStop:
      return "task_stop";
    case EventKind::kSteal:
      return "steal";
    case EventKind::kQueueDepth:
      return "queue_depth";
    case EventKind::kRss:
      return "rss";
    case EventKind::kPhase:
      return "phase";
    case EventKind::kCounter:
      return "counter";
    case EventKind::kMark:
      return "mark";
  }
  return "?";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1024;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// The validator's catalogue of legal "ev" values.
const std::set<std::string>& KnownKinds() {
  static const std::set<std::string>* kinds = [] {
    auto* s = new std::set<std::string>();
    for (int k = 0; k <= static_cast<int>(EventKind::kMark); ++k) {
      s->insert(std::string(EventKindName(static_cast<EventKind>(k))));
    }
    return s;
  }();
  return *kinds;
}

}  // namespace

EventJournal::EventJournal(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      slots_(new Slot[RoundUpPow2(capacity)]),
      epoch_(std::chrono::steady_clock::now()) {}

EventJournal::~EventJournal() {
  // Un-publish on destruction so a stale global pointer cannot dangle past
  // the owner's scope (profile runs install/uninstall around the workload).
  EventJournal* self = this;
  global_.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

int64_t EventJournal::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               epoch_)
      .count();
}

void EventJournal::Emit(EventKind kind, const char* name, int64_t a, int64_t b, int64_t c,
                        int64_t d) {
  uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (capacity_ - 1)];
  // Mark the slot as in-flight so a concurrent Drain skips it rather than
  // reading a half-written payload (Drain is only meaningful when producers
  // are quiescent, but it must never read torn data even when misused).
  slot.stamp.store(kEmpty, std::memory_order_relaxed);
  slot.event.ts_us = NowMicros();
  slot.event.seq = seq;
  slot.event.tid = CurrentThreadId();
  slot.event.kind = kind;
  slot.event.name = name;
  slot.event.a = a;
  slot.event.b = b;
  slot.event.c = c;
  slot.event.d = d;
  slot.stamp.store(seq, std::memory_order_release);
}

int64_t EventJournal::dropped() const {
  int64_t total = emitted();
  int64_t cap = static_cast<int64_t>(capacity_);
  return total > cap ? total - cap : 0;
}

std::vector<Event> EventJournal::Drain() const {
  std::vector<Event> out;
  uint64_t total = cursor_.load(std::memory_order_acquire);
  uint64_t first = total > capacity_ ? total - capacity_ : 0;
  out.reserve(static_cast<size_t>(total - first));
  for (uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq & (capacity_ - 1)];
    if (slot.stamp.load(std::memory_order_acquire) != seq) {
      continue;  // Overwritten or still in flight.
    }
    out.push_back(slot.event);
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::string EventJournal::ToJsonl() const {
  std::vector<Event> events = Drain();
  std::string out;
  {
    JsonWriter w;
    w.BeginObject();
    w.KV("schema", kEventsSchema);
    w.KV("capacity", static_cast<int64_t>(capacity_));
    w.KV("emitted", emitted());
    w.KV("dropped", dropped());
    w.EndObject();
    out += w.Take();
    out += '\n';
  }
  for (const Event& e : events) {
    JsonWriter w;
    w.BeginObject();
    w.KV("ev", EventKindName(e.kind));
    w.KV("seq", static_cast<int64_t>(e.seq));
    w.KV("ts_us", e.ts_us);
    w.KV("tid", static_cast<int64_t>(e.tid));
    w.KV("name", e.name);
    w.KV("a", e.a);
    w.KV("b", e.b);
    w.KV("c", e.c);
    w.KV("d", e.d);
    w.EndObject();
    out += w.Take();
    out += '\n';
  }
  return out;
}

bool EventJournal::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return false;
  }
  out << ToJsonl();
  return static_cast<bool>(out);
}

std::vector<std::string> EventJournal::ValidateJsonl(std::string_view text) {
  std::vector<std::string> problems;
  size_t line_no = 0;
  size_t pos = 0;
  int64_t prev_seq = -1;
  bool saw_header = false;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) {
      continue;
    }
    ++line_no;
    std::string where = "line " + std::to_string(line_no);
    std::optional<JsonValue> doc = JsonValue::Parse(line);
    if (!doc.has_value() || !doc->is_object()) {
      problems.push_back(where + ": not a JSON object");
      continue;
    }
    if (line_no == 1) {
      saw_header = true;
      const JsonValue* schema = doc->Find("schema");
      if (schema == nullptr || !schema->is_string() || schema->string != kEventsSchema) {
        problems.push_back(where + ": header schema must be \"" + kEventsSchema + "\"");
      }
      for (const char* key : {"capacity", "emitted", "dropped"}) {
        const JsonValue* v = doc->Find(key);
        if (v == nullptr || !v->is_number()) {
          problems.push_back(where + ": header missing numeric '" + key + "'");
        }
      }
      continue;
    }
    const JsonValue* ev = doc->Find("ev");
    if (ev == nullptr || !ev->is_string() || KnownKinds().count(ev->string) == 0) {
      problems.push_back(where + ": 'ev' must be a known event kind");
    }
    const JsonValue* name = doc->Find("name");
    if (name == nullptr || !name->is_string()) {
      problems.push_back(where + ": 'name' must be a string");
    }
    for (const char* key : {"seq", "ts_us", "tid", "a", "b", "c", "d"}) {
      const JsonValue* v = doc->Find(key);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(where + ": missing numeric '" + std::string(key) + "'");
      }
    }
    if (const JsonValue* seq = doc->Find("seq"); seq != nullptr && seq->is_number()) {
      int64_t s = static_cast<int64_t>(seq->number);
      if (s <= prev_seq) {
        problems.push_back(where + ": seq not strictly increasing");
      }
      prev_seq = s;
    }
  }
  if (!saw_header) {
    problems.push_back("empty document: missing sash-events-v1 header line");
  }
  return problems;
}

}  // namespace sash::obs
