// Contention-aware lock instrumentation. Every hot shared structure in the
// pipeline (string interner, pattern cache, thread-pool queues, cache I/O,
// the metrics registry itself) guards itself with a ProfiledMutex or wraps
// its blocking region in a ScopedWaitProbe; each probe is tied to a named
// LockSite in a process-wide registry that accumulates acquisition counts,
// contended-wait totals, wait-time histograms, and hold times.
//
// Cost model, from cheapest to most expensive:
//   - compiled out (SASH_LOCK_PROBES=0): ProfiledMutex IS a std::mutex —
//     same size, same codegen, no site registration (checked by static_assert
//     in tests);
//   - compiled in, disarmed (the default at runtime): one relaxed atomic
//     load and branch per lock/unlock, no clock reads;
//   - armed (LockProbes::Arm(), used by `sash profile` and bench_contention):
//     one relaxed fetch_add per acquisition; hold timing is sampled 1-in-8
//     (two clock reads on sampled acquisitions, recorded scaled), so the
//     uncontended armed path is mostly clock-free. The contended path always
//     measures its wait in full and emits an event-journal record —
//     contention is the signal, so it is never sampled away.
//
// Sites register with string literals (static storage duration) so the
// armed hot path never allocates and the journal can carry the name pointer.
#ifndef SASH_OBS_LOCKPROBE_H_
#define SASH_OBS_LOCKPROBE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef SASH_LOCK_PROBES
#define SASH_LOCK_PROBES 1
#endif

namespace sash::obs {

// Accumulated statistics for one probe site. All fields are relaxed atomics:
// the numbers are telemetry, and per-field tearing across a snapshot is
// acceptable (snapshots are taken when the workload is quiescent anyway).
struct LockSite {
  static constexpr int kWaitBuckets = 48;  // log2 ns buckets, like Histogram.
  // Hold timing is sampled one acquisition in 2^kHoldSampleShift; sampled
  // durations are recorded scaled so hold_ns stays an estimate of the total.
  // The first acquisition after a Reset() is always sampled, which keeps
  // single-threaded tests deterministic.
  static constexpr int kHoldSampleShift = 3;
  static constexpr int64_t kHoldSampleMask = (int64_t{1} << kHoldSampleShift) - 1;

  const char* name;  // Static string; identity for journal/report output.
  std::atomic<int64_t> acquisitions{0};  // Total lock()/probe entries.
  std::atomic<int64_t> contended{0};     // Entries that had to wait.
  std::atomic<int64_t> wait_ns{0};       // Total nanoseconds spent waiting.
  std::atomic<int64_t> hold_ns{0};       // Estimated ns held (sampled, scaled).
  std::atomic<int64_t> max_wait_ns{0};
  std::atomic<int64_t> wait_buckets[kWaitBuckets] = {};

  explicit LockSite(const char* site_name) : name(site_name) {}

  void RecordWait(int64_t ns);  // Contended acquisition: wait accounting.
  void RecordHold(int64_t ns) {
    hold_ns.fetch_add(ns << kHoldSampleShift, std::memory_order_relaxed);
  }
  // Counts the acquisition; true when this one's hold time should be timed.
  bool RecordAcquisition() {
    return (acquisitions.fetch_add(1, std::memory_order_relaxed) & kHoldSampleMask) == 0;
  }
};

// Point-in-time copy of one site's stats, with wait-time percentiles
// estimated from the log2 buckets.
struct LockSiteSnapshot {
  std::string name;
  int64_t acquisitions = 0;
  int64_t contended = 0;
  int64_t wait_ns = 0;
  int64_t hold_ns = 0;
  int64_t max_wait_ns = 0;
  int64_t wait_p50_ns = 0;  // Upper bound of the bucket holding p50.
  int64_t wait_p99_ns = 0;
};

// The process-wide probe registry and the runtime arm switch. Sites are
// registered once (typically from a function-local static) and live forever.
class LockProbes {
 public:
  // Runtime switch. Disarmed probes cost one relaxed load per operation.
  static void Arm() { armed_.store(true, std::memory_order_relaxed); }
  static void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  static bool armed() { return armed_.load(std::memory_order_relaxed); }

  // Registers (or re-finds, by pointer identity of `name`'s characters
  // being irrelevant — every call registers a new site; callers hold the
  // returned pointer in a static) a site. Thread-safe; never deallocated.
  static LockSite* Register(const char* name);

  // Snapshot of every registered site, sorted by total wait descending.
  static std::vector<LockSiteSnapshot> Snapshot();

  // Zeroes every site's counters (A/B benching across arm states).
  static void Reset();

  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  static std::atomic<bool> armed_;
};

// RAII probe for a blocking region that is not a mutex (cache file I/O, a
// magic-static initialization): the whole region duration is recorded as
// wait time on the site, and the entry counts as contended when it exceeds
// `contended_threshold_ns`. No-op while disarmed.
class ScopedWaitProbe {
 public:
  explicit ScopedWaitProbe(LockSite* site, int64_t contended_threshold_ns = 0)
      : site_(LockProbes::armed() ? site : nullptr),
        threshold_ns_(contended_threshold_ns) {
    if (site_ != nullptr) {
      start_ns_ = LockProbes::NowNanos();
    }
  }
  ~ScopedWaitProbe();
  ScopedWaitProbe(const ScopedWaitProbe&) = delete;
  ScopedWaitProbe& operator=(const ScopedWaitProbe&) = delete;

 private:
  LockSite* site_;
  int64_t threshold_ns_;
  int64_t start_ns_ = 0;
};

// A std::mutex with per-site contention accounting. Satisfies Lockable, so
// std::lock_guard / std::unique_lock / std::condition_variable_any work
// unchanged. The uncontended armed path is try_lock + one fetch_add (plus
// two clock reads on the 1-in-8 hold-sampled acquisitions); the contended
// path always times its wait and emits a journal event.
class ProfiledMutexImpl {
 public:
  explicit ProfiledMutexImpl(const char* site_name)
      : site_(LockProbes::Register(site_name)) {}
  ProfiledMutexImpl(const ProfiledMutexImpl&) = delete;
  ProfiledMutexImpl& operator=(const ProfiledMutexImpl&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  LockSite* site() const { return site_; }

  static constexpr bool kProfiled = true;

 private:
  void LockContended();

  std::mutex mu_;
  LockSite* site_;
  // Timestamp of the armed acquisition currently holding the mutex; 0 when
  // the holder acquired while disarmed. Written only by the holder, so a
  // plain field is safe (the mutex itself orders access).
  int64_t hold_start_ns_ = 0;
};

// The compiled-out variant: bit-for-bit a std::mutex. Tests static_assert
// that this stays true, which is the "disarmed overhead is zero" guarantee
// for builds that define SASH_LOCK_PROBES=0.
class PlainProfiledMutex {
 public:
  explicit PlainProfiledMutex(const char* /*site_name*/) {}
  PlainProfiledMutex(const PlainProfiledMutex&) = delete;
  PlainProfiledMutex& operator=(const PlainProfiledMutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

  static constexpr bool kProfiled = false;

 private:
  std::mutex mu_;
};

#if SASH_LOCK_PROBES
using ProfiledMutex = ProfiledMutexImpl;
#else
using ProfiledMutex = PlainProfiledMutex;
#endif

}  // namespace sash::obs

#endif  // SASH_OBS_LOCKPROBE_H_
