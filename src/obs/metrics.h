// The metrics registry: named counters, gauges, and log-bucketed latency
// histograms shared by every analysis subsystem. All instruments are lock-free
// on the hot path (relaxed atomics); the registry itself locks only on
// creation and snapshot. A null registry pointer anywhere in the pipeline
// means "metrics off" and costs a single branch.
#ifndef SASH_OBS_METRICS_H_
#define SASH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/lockprobe.h"

namespace sash::obs {

// A monotonically increasing count (commands executed, states forked, ...).
class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A last-writer-wins instantaneous value (peak states, corpus size, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  // Raises the gauge to `value` if larger (for peaks under concurrency).
  void Max(int64_t value) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < value && !value_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram over non-negative integer samples (latencies in nanoseconds,
// sizes, ...) with logarithmic base-2 buckets: bucket 0 holds samples <= 0,
// bucket i>0 holds samples in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Observe(int64_t sample);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;  // 0 when empty.
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Upper bound of the bucket containing the p-th percentile (p in [0,100]).
  // An estimate — exact values are not retained.
  int64_t PercentileUpperBound(double p) const;

  // The bucket index a sample lands in (exposed for tests).
  static int BucketIndex(int64_t sample);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

// A point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  struct HistogramStats {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t p50 = 0;
    int64_t p90 = 0;
    int64_t p99 = 0;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
};

// Owns instruments by name. Instrument pointers are stable for the registry's
// lifetime; repeated lookups of the same name return the same instrument.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Serializes a snapshot as {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,min,max,p50,p90,p99}}}.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

 private:
  // Instrumented so `sash report` can prove (or disprove) that registry map
  // lookups are not a contention point — hot paths are expected to hoist
  // instrument handles instead of hitting this lock per operation.
  mutable ProfiledMutex mu_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Serializes a snapshot (same schema as Registry::WriteJson).
void WriteSnapshotJson(const MetricsSnapshot& snapshot, JsonWriter* w);

}  // namespace sash::obs

#endif  // SASH_OBS_METRICS_H_
