#include "obs/lockprobe.h"

#include <algorithm>

#include "obs/journal.h"

namespace sash::obs {

std::atomic<bool> LockProbes::armed_{false};

namespace {

// Intrusive singly-linked list of every registered site. Registration is
// rare (one per static site) and guarded; traversal (snapshot/reset) walks
// the list via acquire loads, so it needs no lock.
std::atomic<LockSite*> g_sites_head{nullptr};
std::mutex g_register_mu;  // Deliberately NOT a ProfiledMutex.

struct SiteNode {
  LockSite site;
  SiteNode* next;
  explicit SiteNode(const char* name) : site(name), next(nullptr) {}
};

// Same bucketing as Histogram::BucketIndex: bucket 0 holds <= 0, bucket
// i > 0 holds [2^(i-1), 2^i).
int WaitBucketIndex(int64_t ns) {
  if (ns <= 0) {
    return 0;
  }
  int bucket = 1;
  while (bucket < LockSite::kWaitBuckets - 1 && ns >= (int64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

int64_t BucketUpperBound(int index) {
  return index == 0 ? 0 : int64_t{1} << index;
}

// p in [0,100]: upper bound of the bucket containing the p-th percentile.
int64_t PercentileFromBuckets(const int64_t* buckets, int64_t count, double p) {
  if (count <= 0) {
    return 0;
  }
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(count - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < LockSite::kWaitBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(LockSite::kWaitBuckets - 1);
}

}  // namespace

void LockSite::RecordWait(int64_t ns) {
  contended.fetch_add(1, std::memory_order_relaxed);
  wait_ns.fetch_add(ns, std::memory_order_relaxed);
  wait_buckets[WaitBucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  int64_t cur = max_wait_ns.load(std::memory_order_relaxed);
  while (cur < ns && !max_wait_ns.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

LockSite* LockProbes::Register(const char* name) {
  std::lock_guard<std::mutex> lock(g_register_mu);
  // Intentionally leaked: sites are created from function-local statics in
  // subsystems (interner, pattern cache) that outlive every destructor.
  auto* node = new SiteNode(name);
  node->next = reinterpret_cast<SiteNode*>(g_sites_head.load(std::memory_order_relaxed));
  g_sites_head.store(reinterpret_cast<LockSite*>(node), std::memory_order_release);
  return &node->site;
}

std::vector<LockSiteSnapshot> LockProbes::Snapshot() {
  // Sites sharing a name (e.g. every pool worker's deque lock registers
  // "pool.worker") merge into one logical entry.
  struct Agg {
    LockSiteSnapshot snap;
    int64_t buckets[LockSite::kWaitBuckets] = {};
  };
  std::vector<Agg> aggs;
  for (auto* node = reinterpret_cast<SiteNode*>(g_sites_head.load(std::memory_order_acquire));
       node != nullptr; node = node->next) {
    const LockSite& s = node->site;
    Agg* agg = nullptr;
    for (Agg& existing : aggs) {
      if (existing.snap.name == s.name) {
        agg = &existing;
        break;
      }
    }
    if (agg == nullptr) {
      aggs.emplace_back();
      agg = &aggs.back();
      agg->snap.name = s.name;
    }
    agg->snap.acquisitions += s.acquisitions.load(std::memory_order_relaxed);
    agg->snap.contended += s.contended.load(std::memory_order_relaxed);
    agg->snap.wait_ns += s.wait_ns.load(std::memory_order_relaxed);
    agg->snap.hold_ns += s.hold_ns.load(std::memory_order_relaxed);
    agg->snap.max_wait_ns =
        std::max(agg->snap.max_wait_ns, s.max_wait_ns.load(std::memory_order_relaxed));
    for (int i = 0; i < LockSite::kWaitBuckets; ++i) {
      agg->buckets[i] += s.wait_buckets[i].load(std::memory_order_relaxed);
    }
  }
  std::vector<LockSiteSnapshot> out;
  out.reserve(aggs.size());
  for (Agg& agg : aggs) {
    agg.snap.wait_p50_ns = PercentileFromBuckets(agg.buckets, agg.snap.contended, 50.0);
    agg.snap.wait_p99_ns = PercentileFromBuckets(agg.buckets, agg.snap.contended, 99.0);
    out.push_back(std::move(agg.snap));
  }
  std::sort(out.begin(), out.end(), [](const LockSiteSnapshot& a, const LockSiteSnapshot& b) {
    if (a.wait_ns != b.wait_ns) {
      return a.wait_ns > b.wait_ns;
    }
    return a.name < b.name;
  });
  return out;
}

void LockProbes::Reset() {
  for (auto* node = reinterpret_cast<SiteNode*>(g_sites_head.load(std::memory_order_acquire));
       node != nullptr; node = node->next) {
    LockSite& s = node->site;
    s.acquisitions.store(0, std::memory_order_relaxed);
    s.contended.store(0, std::memory_order_relaxed);
    s.wait_ns.store(0, std::memory_order_relaxed);
    s.hold_ns.store(0, std::memory_order_relaxed);
    s.max_wait_ns.store(0, std::memory_order_relaxed);
    for (int i = 0; i < LockSite::kWaitBuckets; ++i) {
      s.wait_buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

ScopedWaitProbe::~ScopedWaitProbe() {
  if (site_ == nullptr) {
    return;
  }
  int64_t waited = LockProbes::NowNanos() - start_ns_;
  site_->RecordAcquisition();
  if (waited > threshold_ns_) {
    site_->RecordWait(waited);
    if (EventJournal* j = EventJournal::Global()) {
      j->Emit(EventKind::kLockWait, site_->name, waited);
    }
  }
}

void ProfiledMutexImpl::lock() {
  if (!LockProbes::armed()) {
    mu_.lock();
    hold_start_ns_ = 0;
    return;
  }
  if (mu_.try_lock()) {
    hold_start_ns_ = site_->RecordAcquisition() ? LockProbes::NowNanos() : 0;
    return;
  }
  LockContended();
}

void ProfiledMutexImpl::LockContended() {
  int64_t t0 = LockProbes::NowNanos();
  mu_.lock();
  int64_t now = LockProbes::NowNanos();
  bool sample_hold = site_->RecordAcquisition();
  site_->RecordWait(now - t0);
  if (EventJournal* j = EventJournal::Global()) {
    j->Emit(EventKind::kLockWait, site_->name, now - t0);
  }
  hold_start_ns_ = sample_hold ? now : 0;
}

bool ProfiledMutexImpl::try_lock() {
  if (!mu_.try_lock()) {
    return false;
  }
  if (LockProbes::armed()) {
    hold_start_ns_ = site_->RecordAcquisition() ? LockProbes::NowNanos() : 0;
  } else {
    hold_start_ns_ = 0;
  }
  return true;
}

void ProfiledMutexImpl::unlock() {
  if (hold_start_ns_ != 0) {
    site_->RecordHold(LockProbes::NowNanos() - hold_start_ns_);
    hold_start_ns_ = 0;
  }
  mu_.unlock();
}

}  // namespace sash::obs
