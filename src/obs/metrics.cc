#include "obs/metrics.h"

namespace sash::obs {

int Histogram::BucketIndex(int64_t sample) {
  if (sample <= 0) {
    return 0;
  }
  int idx = 1;
  while (sample > 1 && idx < kBuckets - 1) {
    sample >>= 1;
    ++idx;
  }
  return idx;
}

void Histogram::Observe(int64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (sample < cur && !min_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (sample > cur && !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::PercentileUpperBound(double p) const {
  int64_t total = count();
  if (total == 0) {
    return 0;
  }
  // Rank of the percentile sample, 1-based.
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(total) + 0.5);
  if (rank < 1) {
    rank = 1;
  }
  if (rank > total) {
    rank = total;
  }
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      // Upper bound of bucket i: 2^(i-1) holds samples < 2^i; bucket 0 is 0.
      return i == 0 ? 0 : int64_t{1} << i;
    }
  }
  return max();
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<ProfiledMutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<ProfiledMutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<ProfiledMutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramStats s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->PercentileUpperBound(50);
    s.p90 = h->PercentileUpperBound(90);
    s.p99 = h->PercentileUpperBound(99);
    snap.histograms.emplace(name, s);
  }
  return snap;
}

void WriteSnapshotJson(const MetricsSnapshot& snapshot, JsonWriter* w) {
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w->KV(name, value);
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w->KV(name, value);
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w->Key(name).BeginObject();
    w->KV("count", h.count);
    w->KV("sum", h.sum);
    w->KV("min", h.min);
    w->KV("max", h.max);
    w->KV("p50", h.p50);
    w->KV("p90", h.p90);
    w->KV("p99", h.p99);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void Registry::WriteJson(JsonWriter* w) const { WriteSnapshotJson(Snapshot(), w); }

std::string Registry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Take();
}

}  // namespace sash::obs
