#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sash::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // A key was just written; the value follows without a comma.
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Comma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Comma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  Comma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf.
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  Comma();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the code point (surrogate pairs unsupported; the
          // writer never emits them).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated string.
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return false;
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Eat('}')) {
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (!Eat(':')) {
          return false;
        }
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (Eat(',')) {
          continue;
        }
        return Eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Eat(']')) {
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) {
          return false;
        }
        out->array.push_back(std::move(v));
        SkipWs();
        if (Eat(',')) {
          continue;
        }
        return Eat(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // Number.
    size_t start = pos_;
    if (Eat('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(num.c_str(), &end);
    out->kind = JsonValue::Kind::kNumber;
    return end != nullptr && *end == '\0';
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  JsonValue out;
  Parser p(text);
  if (!p.ParseDocument(&out)) {
    return std::nullopt;
  }
  return out;
}

void WriteJsonValue(const JsonValue& value, JsonWriter* w) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      w->Null();
      return;
    case JsonValue::Kind::kBool:
      w->Bool(value.boolean);
      return;
    case JsonValue::Kind::kNumber: {
      double d = value.number;
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        w->Int(i);
      } else {
        w->Double(d);
      }
      return;
    }
    case JsonValue::Kind::kString:
      w->String(value.string);
      return;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& v : value.array) {
        WriteJsonValue(v, w);
      }
      w->EndArray();
      return;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [k, v] : value.object) {
        w->Key(k);
        WriteJsonValue(v, w);
      }
      w->EndObject();
      return;
  }
}

}  // namespace sash::obs
