#include "symex/value.h"

#include <atomic>

#include "util/hash.h"
#include "util/strings.h"

namespace sash::symex {

SymValue::SymValue() : concrete_("") {}

SymValue SymValue::Concrete(std::string value) {
  SymValue v;
  v.concrete_ = std::move(value);
  return v;
}

SymValue SymValue::Language(regex::Regex lang) {
  SymValue v;
  v.concrete_.reset();
  v.lang_ = std::move(lang);
  return v;
}

SymValue SymValue::Unknown() {
  using regex::CharSet;
  using regex::MakeChars;
  using regex::MakeStar;
  static const regex::Regex kAny = regex::Regex::FromAst(MakeStar(MakeChars(CharSet::All())));
  return Language(kAny);
}

SymValue SymValue::UnknownLine() { return Language(regex::Regex::AnyLine()); }

SymValue SymValue::AbsolutePath() {
  static const regex::Regex kPath = *regex::Regex::FromPattern("/([^/\\n]+/)*[^/\\n]*");
  return Language(kPath);
}

SymValue SymValue::UnknownNumber() {
  static const regex::Regex kNum = *regex::Regex::FromPattern("-?\\d+");
  return Language(kNum);
}

SymValue SymValue::Nothing() { return Language(regex::Regex::Nothing()); }

const regex::Regex& SymValue::lang() const {
  if (!lang_.has_value()) {
    lang_ = regex::Regex::Literal(*concrete_);
  }
  return *lang_;
}

bool SymValue::CanBeEmpty() const {
  if (is_concrete()) {
    return concrete_->empty();
  }
  return lang().Matches("");
}

bool SymValue::MustBeEmpty() const {
  if (is_concrete()) {
    return concrete_->empty();
  }
  return lang().IncludedIn(regex::Regex::Epsilon());
}

bool SymValue::CanEqual(std::string_view s) const {
  if (is_concrete()) {
    return *concrete_ == s;
  }
  return lang().Matches(s);
}

bool SymValue::MustEqual(std::string_view s) const {
  if (is_concrete()) {
    return *concrete_ == s;
  }
  return !IsNothing() && lang().IncludedIn(regex::Regex::Literal(s));
}

bool SymValue::IsNothing() const {
  if (is_concrete()) {
    return false;
  }
  return lang().IsEmptyLanguage();
}

bool SymValue::CanBeIn(const regex::Regex& language) const {
  if (is_concrete()) {
    return language.Matches(*concrete_);
  }
  return !lang().Intersect(language).IsEmptyLanguage();
}

bool SymValue::MustBeIn(const regex::Regex& language) const {
  if (is_concrete()) {
    return language.Matches(*concrete_);
  }
  return !IsNothing() && lang().IncludedIn(language);
}

SymValue SymValue::Append(const SymValue& other) const {
  if (is_concrete() && other.is_concrete()) {
    return Concrete(*concrete_ + *other.concrete_);
  }
  return Language(lang().Concat(other.lang()));
}

SymValue SymValue::UnionWith(const SymValue& other) const {
  if (is_concrete() && other.is_concrete() && *concrete_ == *other.concrete_) {
    return *this;
  }
  return Language(lang().Union(other.lang()));
}

SymValue SymValue::RestrictTo(const regex::Regex& language) const {
  if (is_concrete()) {
    return language.Matches(*concrete_) ? *this : Nothing();
  }
  return Language(lang().Intersect(language));
}

SymValue SymValue::RestrictNotEqual(std::string_view s) const {
  if (is_concrete()) {
    return *concrete_ == s ? Nothing() : *this;
  }
  return Language(lang().Intersect(regex::Regex::Literal(s).Complement()));
}

SymValue SymValue::RestrictNonEmpty() const { return RestrictNotEqual(""); }

SymValue SymValue::RestrictEmpty() const { return RestrictTo(regex::Regex::Epsilon()); }

std::optional<std::string> SymValue::Witness() const {
  if (is_concrete()) {
    return *concrete_;
  }
  return lang().Witness();
}

namespace {
std::atomic<bool> g_describe_cache_enabled{true};
}  // namespace

void SymValue::SetDescribeCacheEnabled(bool enabled) {
  g_describe_cache_enabled.store(enabled, std::memory_order_relaxed);
}

std::string SymValue::Describe() const {
  const bool cache = g_describe_cache_enabled.load(std::memory_order_relaxed);
  if (cache && describe_cache_ != nullptr) {
    return *describe_cache_;
  }
  std::string out;
  if (is_concrete()) {
    out = "'" + EscapeForDisplay(*concrete_) + "'";
  } else {
    // Derived languages accumulate unreadable synthesized patterns; fall back
    // to a few sample members, which is what a user needs to see anyway.
    const std::string& pattern = lang().pattern();
    if (pattern.size() <= 48) {
      out = "⟨" + pattern + "⟩";
    } else {
      std::vector<std::string> samples = lang().Samples(3);
      if (samples.empty()) {
        out = "⟨unsatisfiable⟩";
      } else {
        out = "⟨strings like";
        for (const std::string& s : samples) {
          out += " '" + EscapeForDisplay(s) + "'";
        }
        out += " ...⟩";
      }
    }
  }
  if (cache) {
    describe_cache_ = std::make_shared<const std::string>(out);
  }
  return out;
}

uint64_t SymValue::Digest() const {
  if (digest_ != 0) {
    return digest_;
  }
  // Domain tags keep the two forms from ever colliding structurally.
  uint64_t h = is_concrete()
                   ? util::Fnv1a(*concrete_, 0x636f6e633a000000ull)  // "conc:"
                   : util::Fnv1a(lang().pattern(), 0x6c616e673a000000ull);  // "lang:"
  if (h == 0) {
    h = 1;  // Reserve 0 as the "not computed" sentinel.
  }
  digest_ = h;
  return h;
}

}  // namespace sash::symex
