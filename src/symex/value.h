// Symbolic string values. The engine follows the paper's §3 recipe: variable
// contents are tracked as constraints in a "well-understood formalism" —
// regular languages. A SymValue is either one concrete string or a regular
// language of possible strings; all expansion operators are defined over
// both, over-approximating where POSIX semantics outrun regular languages.
#ifndef SASH_SYMEX_VALUE_H_
#define SASH_SYMEX_VALUE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "regex/regex.h"

namespace sash::symex {

class SymValue {
 public:
  // The empty string (the default value).
  SymValue();

  static SymValue Concrete(std::string value);
  static SymValue Language(regex::Regex lang);
  // Any string over any bytes (including newlines).
  static SymValue Unknown();
  // Any single line (no newline) — the default for opaque command output.
  static SymValue UnknownLine();
  // Canonical absolute path language (the paper's /?([^/]*/)*[^/]+ shape,
  // anchored absolute): used for $PWD and resolved directories.
  static SymValue AbsolutePath();
  // An integer literal language.
  static SymValue UnknownNumber();
  // The union of no strings (unsatisfiable value — used to kill branches).
  static SymValue Nothing();

  bool is_concrete() const { return concrete_.has_value(); }
  const std::string& concrete() const { return *concrete_; }
  const regex::Regex& lang() const;  // Valid for both forms (lazily built).

  // --- queries ---
  bool CanBeEmpty() const;
  bool MustBeEmpty() const;
  bool CanEqual(std::string_view s) const;
  bool MustEqual(std::string_view s) const;
  bool IsNothing() const;  // Empty language: no possible value.
  // Can / must the value be a member of `language`?
  bool CanBeIn(const regex::Regex& language) const;
  bool MustBeIn(const regex::Regex& language) const;

  // --- combinators ---
  SymValue Append(const SymValue& other) const;   // Concatenation.
  SymValue UnionWith(const SymValue& other) const;
  // Refinements (returns Nothing() when unsatisfiable).
  SymValue RestrictTo(const regex::Regex& language) const;     // ∩ language.
  SymValue RestrictNotEqual(std::string_view s) const;         // minus {s}.
  SymValue RestrictNonEmpty() const;                           // minus {""}.
  SymValue RestrictEmpty() const;                              // ∩ {""}.

  // A shortest concrete member, if the value is satisfiable.
  std::optional<std::string> Witness() const;

  // "'text'" for concrete values, "⟨pattern⟩" for languages.
  std::string Describe() const;

  // Process-wide switch for the Describe() memo (default on). Off restores
  // the pre-overhaul recompute-every-call behavior; only the hot-path bench
  // flips it, to measure what the cache buys.
  static void SetDescribeCacheEnabled(bool enabled);

  // 64-bit content digest, domain-separated between the concrete and
  // language forms (concrete "a" never equals language /a/). For languages
  // it hashes the display pattern — a finer key than structural language
  // equality, which is exactly what the merge digest needs (states it calls
  // equal must render identical reports). Computed once, cached; copies of
  // an undigested value recompute (cheap: one FNV pass).
  uint64_t Digest() const;

 private:
  std::optional<std::string> concrete_;
  mutable std::optional<regex::Regex> lang_;  // Cache for concrete values.
  mutable uint64_t digest_ = 0;               // 0 = not yet computed.
  // Describe() can be expensive for long synthesized patterns (it samples
  // the DFA); the result is immutable, so copies share it.
  mutable std::shared_ptr<const std::string> describe_cache_;
};

}  // namespace sash::symex

#endif  // SASH_SYMEX_VALUE_H_
