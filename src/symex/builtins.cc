// Builtin command models: cd, test/[, echo, printf, exit, export, unset,
// read, shift, pwd, basename, dirname, and a value-precise realpath model.
// These behave like primitive functions of the shell "language" (§3).
#include <cctype>
#include <unordered_set>

#include "fs/path.h"
#include "symex/evaluator.h"
#include "util/intern.h"
#include "util/strings.h"

namespace sash::symex {

namespace {

using specs::PathState;
using symfs::Knowledge;
using symfs::PathKey;

bool AllDigits(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  size_t start = s[0] == '-' ? 1 : 0;
  if (start == s.size()) {
    return false;
  }
  for (size_t i = start; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<PathKey> Evaluator::PathKeyOf(const State& st, const Expanded& e) const {
  if (e.value.is_concrete()) {
    const std::string& v = e.value.concrete();
    if (v.empty()) {
      return std::nullopt;
    }
    if (fs::IsAbsolute(v)) {
      return PathKey::Concrete(v);
    }
    if (st.cwd.is_concrete()) {
      return PathKey::Concrete(fs::Absolutize(v, st.cwd.concrete()));
    }
    // Relative path with unknown cwd: treat the cwd as a variable root so
    // facts about it still compose within this state.
    return PathKey::VarRooted("$CWD", v);
  }
  if (e.prov.has_value() && !e.prov->canonicalized) {
    const SymValue* var = st.Lookup(e.prov->var);
    if (var != nullptr) {
      return PathKey::VarRooted("$" + e.prov->var, e.prov->suffix);
    }
  }
  return std::nullopt;
}

namespace {

// Every name TryBuiltin handles. The interned-set probe rejects external
// commands in one hash lookup instead of walking the whole compare chain.
bool IsBuiltinName(const std::string& name) {
  static const auto* builtins = new std::unordered_set<util::Symbol>{
      util::Symbol::Intern("."),        util::Symbol::Intern(":"),
      util::Symbol::Intern("["),        util::Symbol::Intern("basename"),
      util::Symbol::Intern("cd"),       util::Symbol::Intern("dirname"),
      util::Symbol::Intern("echo"),     util::Symbol::Intern("eval"),
      util::Symbol::Intern("exit"),     util::Symbol::Intern("export"),
      util::Symbol::Intern("false"),    util::Symbol::Intern("local"),
      util::Symbol::Intern("printf"),   util::Symbol::Intern("pwd"),
      util::Symbol::Intern("read"),     util::Symbol::Intern("readonly"),
      util::Symbol::Intern("realpath"), util::Symbol::Intern("return"),
      util::Symbol::Intern("set"),      util::Symbol::Intern("shift"),
      util::Symbol::Intern("source"),   util::Symbol::Intern("test"),
      util::Symbol::Intern("true"),     util::Symbol::Intern("unset"),
  };
  auto sym = util::Symbol::Find(name);
  return sym.has_value() && builtins->count(*sym) > 0;
}

}  // namespace

bool Evaluator::TryBuiltin(const std::string& name, State& st, const syntax::Command& cmd,
                           const std::vector<Expanded>& argv, int depth, std::vector<State>* out) {
  (void)depth;  // Builtins are leaves; the budget only constrains recursion.
  if (!IsBuiltinName(name)) {
    return false;
  }
  auto args_from = [&](size_t i) {
    return std::vector<Expanded>(argv.begin() + static_cast<long>(i), argv.end());
  };

  if (name == "true" || name == ":") {
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "false") {
    st.exit = ExitStatus::Known(1);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "echo") {
    // Value: arguments joined by spaces ("-n" only affects the trailing
    // newline, which substitution strips anyway).
    SymValue line = SymValue::Concrete("");
    bool first = true;
    std::optional<Provenance> prov;
    size_t start = 1;
    if (argv.size() > 1 && argv[1].value.is_concrete() && argv[1].value.concrete() == "-n") {
      start = 2;
    }
    for (size_t i = start; i < argv.size(); ++i) {
      if (!first) {
        line = line.Append(SymValue::Concrete(" "));
      }
      line = line.Append(argv[i].value);
      if (i == start && argv.size() == start + 1) {
        prov = argv[i].prov;
      }
      first = false;
    }
    st.stdout_lines.push_back(line);
    st.stdout_prov = prov;
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "printf") {
    // Format strings are not interpreted; output shape is unknown text.
    st.stdout_lines.push_back(SymValue::UnknownLine());
    st.stdout_prov.reset();
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "pwd") {
    st.stdout_lines.push_back(st.cwd);
    st.stdout_prov.reset();
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "cd") {
    std::vector<State> results = BuiltinCd(std::move(st), argv);
    for (State& s : results) {
      out->push_back(std::move(s));
    }
    return true;
  }
  if (name == "realpath") {
    std::vector<State> results = BuiltinRealpath(std::move(st), argv);
    for (State& s : results) {
      out->push_back(std::move(s));
    }
    return true;
  }
  if (name == "exit") {
    if (argv.size() > 1 && argv[1].value.is_concrete() && AllDigits(argv[1].value.concrete())) {
      st.exit = ExitStatus::Known(std::atoi(argv[1].value.concrete().c_str()));
    }
    st.terminated = true;
    out->push_back(std::move(st));
    return true;
  }
  if (name == "return") {
    // Approximated as termination of the enclosing unit.
    if (argv.size() > 1 && argv[1].value.is_concrete() && AllDigits(argv[1].value.concrete())) {
      st.exit = ExitStatus::Known(std::atoi(argv[1].value.concrete().c_str()));
    }
    st.terminated = true;
    out->push_back(std::move(st));
    return true;
  }
  if (name == "export" || name == "readonly" || name == "local") {
    for (size_t i = 1; i < argv.size(); ++i) {
      if (!argv[i].value.is_concrete()) {
        continue;
      }
      const std::string& a = argv[i].value.concrete();
      size_t eq = a.find('=');
      if (eq != std::string::npos && eq > 0) {
        st.Bind(a.substr(0, eq), SymValue::Concrete(a.substr(eq + 1)));
      }
    }
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "unset") {
    for (size_t i = 1; i < argv.size(); ++i) {
      if (argv[i].value.is_concrete()) {
        st.Unset(argv[i].value.concrete());
      }
    }
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "read") {
    for (size_t i = 1; i < argv.size(); ++i) {
      if (argv[i].value.is_concrete() && !argv[i].value.concrete().empty() &&
          argv[i].value.concrete()[0] != '-') {
        st.Bind(argv[i].value.concrete(), SymValue::UnknownLine());
      }
    }
    st.exit = ExitStatus::Unknown();  // EOF fails.
    out->push_back(std::move(st));
    return true;
  }
  if (name == "shift") {
    for (int i = 1; i <= 9; ++i) {
      std::string cur = std::to_string(i);
      std::string next = std::to_string(i + 1);
      const SymValue* v = st.Lookup(next);
      if (v != nullptr) {
        bool mu = st.MaybeUnset(next);
        SymValue copy = *v;
        if (mu) {
          st.BindMaybeUnset(cur, std::move(copy));
        } else {
          st.Bind(cur, std::move(copy));
        }
      } else {
        st.Unset(cur);
      }
    }
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "set") {
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "basename" || name == "dirname") {
    if (argv.size() > 1 && argv[1].value.is_concrete()) {
      std::string r = name == "basename" ? fs::BaseName(argv[1].value.concrete())
                                         : fs::DirName(argv[1].value.concrete());
      st.stdout_lines.push_back(SymValue::Concrete(r));
    } else {
      st.stdout_lines.push_back(SymValue::UnknownLine());
    }
    st.stdout_prov.reset();
    st.exit = ExitStatus::Known(0);
    out->push_back(std::move(st));
    return true;
  }
  if (name == "eval" || name == "source" || name == ".") {
    Emit(Severity::kInfo, kCodeUnknownCommand, cmd.range,
         "'" + name + "' runs dynamically-constructed code; its effects are not analyzed", st);
    st.exit = ExitStatus::Unknown();
    out->push_back(std::move(st));
    return true;
  }
  if (name == "test" || name == "[") {
    std::vector<Expanded> args = args_from(1);
    if (name == "[") {
      if (args.empty() || !args.back().value.is_concrete() ||
          args.back().value.concrete() != "]") {
        Emit(Severity::kWarning, kCodeParamError, cmd.range, "'[' is missing the closing ']'",
             st);
      } else {
        args.pop_back();
      }
    }
    TestOutcome outcome = EvalTest(st, args);
    auto apply = [&](State s, const BranchRefinement& ref, bool truth) {
      for (const auto& [var, value] : ref.rebind) {
        s.Bind(var, value);
      }
      for (const auto& [key, state] : ref.fs_assume) {
        s.sfs.Assume(key, state);
        ++stats_->fs_ops;
      }
      s.exit = ExitStatus::Known(truth ? 0 : 1);
      return s;
    };
    switch (outcome.verdict) {
      case TestOutcome::Verdict::kTrue:
        out->push_back(apply(std::move(st), outcome.if_true, true));
        break;
      case TestOutcome::Verdict::kFalse:
        out->push_back(apply(std::move(st), outcome.if_false, false));
        break;
      case TestOutcome::Verdict::kUnknown: {
        ++stats_->forks;
        State t = apply(st, outcome.if_true, true);
        t.id = NewStateId();
        t.Assume("assumed " + outcome.description + " is true");
        State f = apply(std::move(st), outcome.if_false, false);
        f.Assume("assumed " + outcome.description + " is false");
        out->push_back(std::move(t));
        out->push_back(std::move(f));
        break;
      }
    }
    return true;
  }
  return false;
}

std::vector<State> Evaluator::BuiltinCd(State st, const std::vector<Expanded>& argv) {
  // Resolve the target value ("cd" alone goes to $HOME).
  Expanded target;
  if (argv.size() < 2) {
    const SymValue* home = st.Lookup("HOME");
    target.value = home != nullptr ? *home : SymValue::Concrete("/home/user");
  } else {
    target = argv[1];
  }

  if (target.value.MustBeEmpty()) {
    // cd "" fails (dash semantics; bash treats it as a no-op — we model the
    // conservative failure, which is also what the Steam trace exhibits).
    st.exit = ExitStatus::Known(1);
    return {std::move(st)};
  }

  auto success_state = [&](State s) {
    if (target.value.is_concrete() && s.cwd.is_concrete()) {
      std::string newcwd = fs::Absolutize(target.value.concrete(), s.cwd.concrete());
      s.cwd = SymValue::Concrete(newcwd);
      s.sfs.Assume(PathKey::Concrete(newcwd), PathState::kIsDir);
      ++stats_->fs_ops;
    } else {
      // Unknown target: the new cwd is some canonical absolute directory
      // (possibly "/" — the paper's "//upd.sh" corner case stays in play).
      s.cwd = SymValue::AbsolutePath().RestrictNonEmpty();
    }
    s.Bind("PWD", s.cwd);
    s.exit = ExitStatus::Known(0);
    return s;
  };
  auto failure_state = [&](State s) {
    s.exit = ExitStatus::Known(1);
    return s;
  };

  // Consult symbolic FS knowledge for concrete targets.
  std::optional<PathKey> key = PathKeyOf(st, target);
  if (key.has_value()) {
    Knowledge k = st.sfs.CheckRequirement(*key, PathState::kIsDir);
    if (k == Knowledge::kKnown) {
      return {success_state(std::move(st))};
    }
    if (k == Knowledge::kContradiction) {
      Emit(Severity::kWarning, kCodeAlwaysFails, SourceRange{},
           "cd " + target.value.Describe() + " always fails: the target cannot be a directory",
           st);
      return {failure_state(std::move(st))};
    }
  }
  if (target.value.CanBeEmpty()) {
    // The empty-target case folds into the failure branch.
  }
  ++stats_->forks;
  State ok = st;
  ok.id = NewStateId();
  ok.Assume("assumed `cd " + target.value.Describe() + "` succeeded");
  if (key.has_value()) {
    ok.sfs.Assume(*key, PathState::kIsDir);
    ++stats_->fs_ops;
  }
  State fail = std::move(st);
  fail.Assume("assumed `cd " + target.value.Describe() + "` failed");
  return {success_state(std::move(ok)), failure_state(std::move(fail))};
}

std::vector<State> Evaluator::BuiltinRealpath(State st, const std::vector<Expanded>& argv) {
  if (argv.size() < 2) {
    st.exit = ExitStatus::Known(1);
    return {std::move(st)};
  }
  const Expanded& arg = argv[1];

  SymValue output;
  std::optional<Provenance> prov;
  if (arg.value.is_concrete()) {
    std::string abs = st.cwd.is_concrete()
                          ? fs::Absolutize(arg.value.concrete(), st.cwd.concrete())
                          : fs::NormalizePath(arg.value.concrete());
    output = SymValue::Concrete(abs);
  } else {
    // Canonicalization maps the input language to canonical absolute paths;
    // keep the variable link so a comparison against "/" can refine it.
    output = SymValue::AbsolutePath();
    if (arg.prov.has_value()) {
      prov = *arg.prov;
      prov->canonicalized = true;
    }
  }

  auto success_state = [&](State s) {
    s.stdout_lines.push_back(output);
    s.stdout_prov = prov;
    s.exit = ExitStatus::Known(0);
    return s;
  };

  std::optional<PathKey> key = PathKeyOf(st, arg);
  if (key.has_value()) {
    Knowledge k = st.sfs.CheckRequirement(*key, PathState::kExists);
    if (k == Knowledge::kKnown) {
      return {success_state(std::move(st))};
    }
    if (k == Knowledge::kContradiction) {
      Emit(Severity::kWarning, kCodeAlwaysFails, SourceRange{},
           "realpath " + arg.value.Describe() + " always fails: the path cannot exist", st);
      st.exit = ExitStatus::Known(1);
      return {std::move(st)};
    }
  }
  ++stats_->forks;
  State ok = st;
  ok.id = NewStateId();
  ok.Assume("assumed `realpath " + arg.value.Describe() + "` succeeded");
  if (key.has_value()) {
    ok.sfs.Assume(*key, PathState::kExists);
    ++stats_->fs_ops;
  }
  State fail = std::move(st);
  fail.Assume("assumed `realpath " + arg.value.Describe() + "` failed");
  fail.exit = ExitStatus::Known(1);
  return {success_state(std::move(ok)), std::move(fail)};
}

TestOutcome Evaluator::EvalTest(State& st, const std::vector<Expanded>& args) {
  TestOutcome out;
  out.description = "[ ";
  for (const Expanded& a : args) {
    out.description += a.value.Describe() + " ";
  }
  out.description += "]";

  auto concrete = [](const Expanded& e) -> std::optional<std::string> {
    if (e.value.is_concrete()) {
      return e.value.concrete();
    }
    return std::nullopt;
  };

  // Negation: [ ! expr ].
  if (!args.empty() && concrete(args[0]) == "!") {
    TestOutcome inner = EvalTest(st, {args.begin() + 1, args.end()});
    TestOutcome flipped;
    flipped.description = inner.description;
    switch (inner.verdict) {
      case TestOutcome::Verdict::kTrue:
        flipped.verdict = TestOutcome::Verdict::kFalse;
        break;
      case TestOutcome::Verdict::kFalse:
        flipped.verdict = TestOutcome::Verdict::kTrue;
        break;
      case TestOutcome::Verdict::kUnknown:
        flipped.verdict = TestOutcome::Verdict::kUnknown;
        break;
    }
    flipped.if_true = inner.if_false;
    flipped.if_false = inner.if_true;
    return flipped;
  }

  auto nonempty_test = [&](const Expanded& e, bool want_nonempty) {
    bool can_empty = e.value.CanBeEmpty();
    bool must_empty = e.value.MustBeEmpty();
    TestOutcome o;
    o.description = out.description;
    if (must_empty) {
      o.verdict = want_nonempty ? TestOutcome::Verdict::kFalse : TestOutcome::Verdict::kTrue;
      return o;
    }
    if (!can_empty) {
      o.verdict = want_nonempty ? TestOutcome::Verdict::kTrue : TestOutcome::Verdict::kFalse;
      return o;
    }
    o.verdict = TestOutcome::Verdict::kUnknown;
    if (e.prov.has_value() && e.prov->suffix.empty() && !e.prov->canonicalized) {
      const SymValue* var = st.Lookup(e.prov->var);
      if (var != nullptr) {
        BranchRefinement& nonempty_branch = want_nonempty ? o.if_true : o.if_false;
        BranchRefinement& empty_branch = want_nonempty ? o.if_false : o.if_true;
        nonempty_branch.rebind.emplace_back(e.prov->var, var->RestrictNonEmpty());
        empty_branch.rebind.emplace_back(e.prov->var, var->RestrictEmpty());
      }
    }
    return o;
  };

  // Unary operators.
  if (args.size() == 2 && concrete(args[0]).has_value()) {
    const std::string op = *concrete(args[0]);
    const Expanded& operand = args[1];
    if (op == "-z") {
      return nonempty_test(operand, /*want_nonempty=*/false);
    }
    if (op == "-n") {
      return nonempty_test(operand, /*want_nonempty=*/true);
    }
    if (op == "-f" || op == "-d" || op == "-e" || op == "-r" || op == "-w" || op == "-x" ||
        op == "-s") {
      specs::PathState required = op == "-f"   ? PathState::kIsFile
                                  : op == "-d" ? PathState::kIsDir
                                               : PathState::kExists;
      std::optional<PathKey> key = PathKeyOf(st, operand);
      TestOutcome o;
      o.description = out.description;
      if (!key.has_value()) {
        o.verdict = TestOutcome::Verdict::kUnknown;
        return o;
      }
      Knowledge k = st.sfs.CheckRequirement(*key, required);
      if (k == Knowledge::kKnown) {
        o.verdict = TestOutcome::Verdict::kTrue;
        return o;
      }
      if (k == Knowledge::kContradiction) {
        o.verdict = TestOutcome::Verdict::kFalse;
        return o;
      }
      o.verdict = TestOutcome::Verdict::kUnknown;
      o.if_true.fs_assume.emplace_back(*key, required);
      if (op == "-e") {
        o.if_false.fs_assume.emplace_back(*key, PathState::kAbsent);
      }
      return o;
    }
    // Unknown unary operator: environment-dependent.
    return out;
  }

  // Binary operators.
  if (args.size() == 3 && concrete(args[1]).has_value()) {
    const std::string op = *concrete(args[1]);
    const Expanded& lhs = args[0];
    const Expanded& rhs = args[2];
    if (op == "=" || op == "==" || op == "!=") {
      bool want_equal = op != "!=";
      TestOutcome o;
      o.description = out.description;
      // Orient so `sym` is the symbolic side when exactly one side is.
      const Expanded* sym = nullptr;
      std::optional<std::string> lit;
      if (concrete(lhs).has_value() && concrete(rhs).has_value()) {
        bool equal = *concrete(lhs) == *concrete(rhs);
        o.verdict = equal == want_equal ? TestOutcome::Verdict::kTrue
                                        : TestOutcome::Verdict::kFalse;
        return o;
      }
      if (concrete(rhs).has_value()) {
        sym = &lhs;
        lit = concrete(rhs);
      } else if (concrete(lhs).has_value()) {
        sym = &rhs;
        lit = concrete(lhs);
      }
      if (sym == nullptr) {
        // Both symbolic: decidable only by language disjointness.
        regex::Regex both = lhs.value.lang().Intersect(rhs.value.lang());
        if (both.IsEmptyLanguage()) {
          o.verdict = want_equal ? TestOutcome::Verdict::kFalse : TestOutcome::Verdict::kTrue;
        } else {
          o.verdict = TestOutcome::Verdict::kUnknown;
        }
        return o;
      }
      if (!sym->value.CanEqual(*lit)) {
        o.verdict = want_equal ? TestOutcome::Verdict::kFalse : TestOutcome::Verdict::kTrue;
        return o;
      }
      if (sym->value.MustEqual(*lit)) {
        o.verdict = want_equal ? TestOutcome::Verdict::kTrue : TestOutcome::Verdict::kFalse;
        return o;
      }
      o.verdict = TestOutcome::Verdict::kUnknown;
      // Refine the underlying variable on each branch, inverting the
      // provenance chain (suffix append, realpath canonicalization).
      if (sym->prov.has_value()) {
        const Provenance& p = *sym->prov;
        const SymValue* var = st.Lookup(p.var);
        if (var != nullptr) {
          SymValue eq_refined = *var;
          SymValue ne_refined = *var;
          bool refinable = true;
          if (p.canonicalized) {
            // canonical(var + suffix) == lit. For the pattern the paper's
            // Fig. 2/3 use (suffix "/", lit "/"): var ∈ {"", "/"}.
            if (p.suffix == "/" && *lit == "/") {
              regex::Regex root_like =
                  regex::Regex::Literal("").Union(regex::Regex::Literal("/"));
              eq_refined = var->RestrictTo(root_like);
              ne_refined = var->RestrictTo(root_like.Complement());
            } else {
              refinable = false;
            }
          } else if (!p.suffix.empty()) {
            // var + suffix == lit  =>  var == lit-without-suffix.
            if (lit->size() >= p.suffix.size() && EndsWith(*lit, p.suffix)) {
              std::string stem = lit->substr(0, lit->size() - p.suffix.size());
              eq_refined = var->RestrictTo(regex::Regex::Literal(stem));
              ne_refined = var->RestrictNotEqual(stem);
            } else {
              // Equality is impossible; handled above via CanEqual on the
              // concatenated language in most cases. Be safe:
              refinable = false;
            }
          } else {
            eq_refined = var->RestrictTo(regex::Regex::Literal(*lit));
            ne_refined = var->RestrictNotEqual(*lit);
          }
          if (refinable) {
            BranchRefinement& eq_branch = want_equal ? o.if_true : o.if_false;
            BranchRefinement& ne_branch = want_equal ? o.if_false : o.if_true;
            eq_branch.rebind.emplace_back(p.var, eq_refined);
            ne_branch.rebind.emplace_back(p.var, ne_refined);
          }
        }
      }
      return o;
    }
    if (op == "-eq" || op == "-ne" || op == "-lt" || op == "-le" || op == "-gt" ||
        op == "-ge") {
      std::optional<std::string> l = concrete(lhs);
      std::optional<std::string> r = concrete(rhs);
      TestOutcome o;
      o.description = out.description;
      if (l.has_value() && r.has_value() && AllDigits(*l) && AllDigits(*r)) {
        long lv = std::atol(l->c_str());
        long rv = std::atol(r->c_str());
        bool truth = op == "-eq"   ? lv == rv
                     : op == "-ne" ? lv != rv
                     : op == "-lt" ? lv < rv
                     : op == "-le" ? lv <= rv
                     : op == "-gt" ? lv > rv
                                   : lv >= rv;
        o.verdict = truth ? TestOutcome::Verdict::kTrue : TestOutcome::Verdict::kFalse;
      }
      return o;
    }
    return out;
  }

  // [ w ]: true iff non-empty.
  if (args.size() == 1) {
    return nonempty_test(args[0], /*want_nonempty=*/true);
  }
  if (args.empty()) {
    TestOutcome o;
    o.description = "[ ]";
    o.verdict = TestOutcome::Verdict::kFalse;
    return o;
  }
  return out;  // Unrecognized form: unknown.
}

}  // namespace sash::symex
