// The symbolic execution engine (§3 ingredient 2): simulates the shell
// interpreter over symbolic states — expanding parameters, tracking working
// directories, following success and failure paths, collecting and
// propagating constraints on symbolic variables, and pruning via concrete
// state whenever possible.
//
// Values are regular languages (SymValue); control-flow uncertainty forks
// states. Command effects come from the Hoare specification library; a small
// set of builtins (cd, test, echo, ...) is modeled natively, like primitive
// functions in other languages.
#ifndef SASH_SYMEX_ENGINE_H_
#define SASH_SYMEX_ENGINE_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "specs/library.h"
#include "symex/state.h"
#include "syntax/ast.h"
#include "util/cancel.h"
#include "util/diagnostics.h"

namespace sash::symex {

// Diagnostic codes emitted by the engine.
inline constexpr char kCodeDeleteRoot[] = "SASH-DEL-ROOT";
inline constexpr char kCodeAlwaysFails[] = "SASH-ALWAYS-FAILS";
inline constexpr char kCodeUnsetVar[] = "SASH-UNSET-VAR";
inline constexpr char kCodeUnknownCommand[] = "SASH-UNKNOWN-CMD";
inline constexpr char kCodeEmptyExpansionArg[] = "SASH-EMPTY-OPERAND";
inline constexpr char kCodeParamError[] = "SASH-PARAM-ERROR";

struct EngineOptions {
  // State-explosion controls (§4: "avoiding exponential explosion").
  int max_states = 128;     // Hard cap on live states; extras are merged.
  int loop_unroll = 2;      // Loop iterations explored before widening.
  int max_call_depth = 16;  // Function/substitution nesting budget.
  int max_for_iterations = 8;

  // Language of possible $0 values; the paper's §3 path shape by default.
  std::string script_path_pattern = "/?([^/\\n]*/)*[^/\\n]+";

  // User annotations: initial variable content constraints (name, pattern).
  std::vector<std::pair<std::string, std::string>> var_patterns;

  // Number of positional parameters assumed possibly-present.
  int positional_params = 3;

  const specs::SpecLibrary* library = nullptr;  // Default: BuiltinGroundTruth.

  // Optional cooperative cancellation: the engine polls this once per
  // executed command and winds down (terminating every live state with an
  // unknown exit) when the token expires. Never fingerprinted into cache
  // keys — only deterministic budgets may shape cached results.
  util::CancelToken* cancel = nullptr;

  bool report_unset_vars = true;
  // Merge states that become indistinguishable (prunes via concrete state).
  bool merge_identical_states = true;
  // Merge by the incremental 64-bit state digest (fast path). When false,
  // fall back to the legacy rendered-string signature — kept so the bench
  // can A/B the two and the differential tests can prove them equivalent.
  bool digest_merge = true;
  // Cross-check every digest merge against the legacy signature and count
  // collisions instead of merging on them. Also enabled by setting the
  // SASH_PARANOID_MERGE environment variable (to anything but "0").
  bool paranoid_merge = false;
  // With digest_merge off, render legacy signatures the way the seed commit
  // did — Describe() per value rather than the cheaper pattern keys. Only
  // the hot-path bench sets this, to reconstruct the pre-overhaul cost.
  bool legacy_describe_signature = false;
  // Skip re-deriving a diagnostic that was already emitted for the same
  // (code, range, severity) — per-state witness/describe work is pure
  // overhead for a duplicate. Off restores the pre-overhaul behavior
  // (compute, then drop at emit time); kept only for bench A/B.
  bool emit_dedup_early_out = true;
};

struct EngineStats {
  int commands_executed = 0;
  int forks = 0;
  int states_peak = 1;
  int states_merged = 0;
  int states_dropped = 0;  // Cap overflow.
  int depth_cap_hits = 0;  // Exec calls cut off at max_call_depth.
  int cancelled = 0;       // 1 when a cancel token cut the run short.
  int final_states = 0;
  int fs_ops = 0;  // Symbolic file-system mutations and assumptions applied.
  // Digest-equal state pairs whose legacy signatures differed; only counted
  // under paranoid merging (such pairs are kept separate, not merged).
  int digest_collisions = 0;

  // Mirrors every field into the registry under "symex.*" (counters, except
  // the peak which is a high-watermark gauge). The registry is the
  // cross-subsystem view; EngineStats stays the cheap per-run struct.
  void PublishTo(obs::Registry* registry) const;
};

class Engine {
 public:
  Engine(EngineOptions options, DiagnosticSink* sink);

  // Runs the whole program from the initial state; returns all surviving
  // final states. Diagnostics accumulate in the sink.
  std::vector<State> Run(const syntax::Program& program);

  // Runs from a caller-provided initial state (for tests and composition).
  std::vector<State> RunFrom(State initial, const syntax::Program& program);

  const EngineStats& stats() const { return stats_; }

  // The initial state the engine starts from (exposed for tests).
  State MakeInitialState() const;

 private:
  friend class Evaluator;
  EngineOptions options_;
  DiagnosticSink* sink_;
  EngineStats stats_;
};

}  // namespace sash::symex

#endif  // SASH_SYMEX_ENGINE_H_
