// Word expansion over symbolic values: parameter expansion (all POSIX
// operators), command substitution, arithmetic, quoting, globs, tilde.
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <functional>

#include "fs/glob.h"
#include "fs/path.h"
#include "symex/evaluator.h"
#include "util/strings.h"

namespace sash::symex {

namespace {

using syntax::ParamOp;
using syntax::Word;
using syntax::WordPart;
using syntax::WordPartKind;

// POSIX smallest/largest prefix/suffix pattern removal on a concrete string.
std::string RemovePattern(const std::string& value, const std::string& pattern, bool suffix,
                          bool largest) {
  size_t n = value.size();
  if (suffix) {
    // Candidate suffixes value[k..n); smallest = largest k.
    if (largest) {
      for (size_t k = 0; k <= n; ++k) {
        if (fs::GlobMatch(pattern, std::string_view(value).substr(k))) {
          return value.substr(0, k);
        }
      }
    } else {
      for (size_t k = n;; --k) {
        if (fs::GlobMatch(pattern, std::string_view(value).substr(k))) {
          return value.substr(0, k);
        }
        if (k == 0) {
          break;
        }
      }
    }
  } else {
    // Candidate prefixes value[0..k).
    if (largest) {
      for (size_t k = n;; --k) {
        if (fs::GlobMatch(pattern, std::string_view(value).substr(0, k))) {
          return value.substr(k);
        }
        if (k == 0) {
          break;
        }
      }
    } else {
      for (size_t k = 0; k <= n; ++k) {
        if (fs::GlobMatch(pattern, std::string_view(value).substr(0, k))) {
          return value.substr(k);
        }
      }
    }
  }
  return value;  // No match: unchanged.
}

bool IsSpecialParam(const std::string& name) {
  return name.size() == 1 && std::string_view("#?*@$!-").find(name[0]) != std::string_view::npos;
}

bool IsPositional(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool StaticGlobPattern(const syntax::Word& word, std::string* out) {
  std::string pattern;
  for (const WordPart& p : word.parts) {
    switch (p.kind) {
      case WordPartKind::kLiteral: {
        // Escape glob metacharacters in literal text.
        for (char c : p.text) {
          if (c == '*' || c == '?' || c == '[' || c == '\\') {
            pattern += '\\';
          }
          pattern += c;
        }
        break;
      }
      case WordPartKind::kSingleQuoted:
        for (char c : p.text) {
          if (c == '*' || c == '?' || c == '[' || c == '\\') {
            pattern += '\\';
          }
          pattern += c;
        }
        break;
      case WordPartKind::kDoubleQuoted:
        for (const WordPart& c : p.children) {
          if (c.kind != WordPartKind::kLiteral) {
            return false;
          }
          for (char ch : c.text) {
            if (ch == '*' || ch == '?' || ch == '[' || ch == '\\') {
              pattern += '\\';
            }
            pattern += ch;
          }
        }
        break;
      case WordPartKind::kGlobStar:
        pattern += '*';
        break;
      case WordPartKind::kGlobQuestion:
        pattern += '?';
        break;
      case WordPartKind::kGlobClass:
        pattern += '[' + p.text + ']';
        break;
      default:
        return false;
    }
  }
  *out = std::move(pattern);
  return true;
}

Expanded Evaluator::ExpandWord(State& st, const Word& word, int depth) {
  Expanded out;
  SymValue acc = SymValue::Concrete("");
  // Provenance tracking: a single expansion part optionally followed by
  // literal text keeps a refinable link to its variable.
  bool prov_alive = true;

  auto append_literal = [&](const std::string& text) {
    acc = acc.Append(SymValue::Concrete(text));
    if (out.prov.has_value()) {
      out.prov->suffix += text;
    }
  };

  std::function<void(const WordPart&, bool)> handle = [&](const WordPart& p, bool quoted) {
    switch (p.kind) {
      case WordPartKind::kLiteral:
      case WordPartKind::kSingleQuoted:
        append_literal(p.text);
        break;
      case WordPartKind::kDoubleQuoted:
        for (const WordPart& c : p.children) {
          handle(c, /*quoted=*/true);
        }
        break;
      case WordPartKind::kParam: {
        SymValue v = ExpandParam(st, p, depth);
        if (prov_alive && !out.prov.has_value() && acc.MustBeEmpty() &&
            p.param_op == ParamOp::kPlain && !IsSpecialParam(p.param_name)) {
          out.prov = Provenance{p.param_name, "", false};
        } else if (out.prov.has_value()) {
          out.prov.reset();  // Second expansion: provenance lost.
          prov_alive = false;
        }
        out.vars.push_back(p.param_name);
        acc = acc.Append(v);
        break;
      }
      case WordPartKind::kCommandSub: {
        std::optional<Provenance> sub_prov;
        SymValue v = EvalCommandSub(st, p, depth, &sub_prov);
        if (prov_alive && !out.prov.has_value() && acc.MustBeEmpty() && sub_prov.has_value()) {
          out.prov = sub_prov;
        } else if (out.prov.has_value()) {
          out.prov.reset();
          prov_alive = false;
        }
        acc = acc.Append(v);
        break;
      }
      case WordPartKind::kArith:
        acc = acc.Append(EvalArith(st, p.text));
        if (out.prov.has_value()) {
          out.prov.reset();
          prov_alive = false;
        }
        break;
      case WordPartKind::kGlobStar:
        if (!quoted) {
          out.has_unquoted_glob = true;
        }
        append_literal("*");
        break;
      case WordPartKind::kGlobQuestion:
        if (!quoted) {
          out.has_unquoted_glob = true;
        }
        append_literal("?");
        break;
      case WordPartKind::kGlobClass:
        if (!quoted) {
          out.has_unquoted_glob = true;
        }
        append_literal("[" + p.text + "]");
        break;
      case WordPartKind::kTilde: {
        std::string home = "/home/user";
        if (!p.text.empty()) {
          home = "/home/" + p.text;
        } else if (const SymValue* h = st.Lookup("HOME"); h != nullptr && h->is_concrete()) {
          home = h->concrete();
        }
        append_literal(home);
        break;
      }
    }
  };

  for (const WordPart& p : word.parts) {
    handle(p, /*quoted=*/false);
  }
  out.value = std::move(acc);

  // A word that is exactly one unquoted parameter/substitution drops the
  // field entirely when it expands empty.
  if (word.parts.size() == 1 &&
      (word.parts[0].kind == WordPartKind::kParam ||
       word.parts[0].kind == WordPartKind::kCommandSub)) {
    out.droppable_if_empty = true;
  }
  return out;
}

SymValue Evaluator::ExpandParam(State& st, const WordPart& part, int depth) {
  const std::string& name = part.param_name;
  const util::Symbol name_sym = part.param_sym();  // Cached on the AST node.

  // --- resolve the raw value ---
  SymValue raw;
  bool is_set = true;
  bool maybe_unset = false;
  if (name == "?") {
    raw = st.exit.known ? SymValue::Concrete(std::to_string(st.exit.code))
                        : SymValue::UnknownNumber();
  } else if (name == "#") {
    raw = SymValue::UnknownNumber();
  } else if (name == "$" || name == "!") {
    raw = SymValue::UnknownNumber();
  } else if (name == "*" || name == "@") {
    raw = SymValue::UnknownLine();
    maybe_unset = true;
  } else if (name == "-") {
    raw = SymValue::UnknownLine();
  } else if (name == "0") {
    if (const SymValue* v = st.Lookup(name_sym); v != nullptr) {
      raw = *v;
    } else {
      raw = SymValue::UnknownLine();
    }
  } else if (const SymValue* v = st.Lookup(name_sym); v != nullptr) {
    raw = *v;
    maybe_unset = st.MaybeUnset(name_sym);
  } else {
    is_set = false;
    raw = SymValue::Concrete("");
    if (options_.report_unset_vars && !IsPositional(name) && !IsSpecialParam(name) &&
        part.param_op != ParamOp::kDefault && part.param_op != ParamOp::kAssignDefault &&
        part.param_op != ParamOp::kAlternative && part.param_op != ParamOp::kErrorIfUnset) {
      Emit(Severity::kWarning, kCodeUnsetVar, part.range,
           "variable '" + name + "' is never assigned; it expands to the empty string", st);
    }
  }

  auto expand_arg = [&]() -> SymValue {
    if (part.param_arg == nullptr) {
      return SymValue::Concrete("");
    }
    return ExpandWord(st, *part.param_arg, depth).value;
  };

  // --- apply the operator ---
  switch (part.param_op) {
    case ParamOp::kPlain:
      if (!is_set) {
        return SymValue::Concrete("");
      }
      if (maybe_unset) {
        return raw.UnionWith(SymValue::Concrete(""));
      }
      return raw;

    case ParamOp::kDefault: {
      SymValue def = expand_arg();
      bool use_default_possible =
          !is_set || maybe_unset || (part.param_colon && raw.CanBeEmpty());
      bool use_default_certain =
          !is_set || (part.param_colon && raw.MustBeEmpty() && !maybe_unset);
      if (use_default_certain) {
        return def;
      }
      if (!use_default_possible) {
        return raw;
      }
      SymValue kept = part.param_colon ? raw.RestrictNonEmpty() : raw;
      return kept.UnionWith(def);
    }

    case ParamOp::kAssignDefault: {
      SymValue def = expand_arg();
      bool use_default_certain =
          !is_set || (part.param_colon && raw.MustBeEmpty() && !maybe_unset);
      SymValue result;
      if (use_default_certain) {
        result = def;
      } else if (!maybe_unset && !(part.param_colon && raw.CanBeEmpty())) {
        result = raw;
      } else {
        SymValue kept = part.param_colon ? raw.RestrictNonEmpty() : raw;
        result = kept.UnionWith(def);
      }
      st.Bind(name_sym, result);
      return result;
    }

    case ParamOp::kErrorIfUnset: {
      bool must_fail = !is_set || (part.param_colon && raw.MustBeEmpty() && !maybe_unset);
      bool may_fail = must_fail || maybe_unset || (part.param_colon && raw.CanBeEmpty());
      if (must_fail) {
        Emit(Severity::kError, kCodeParamError, part.range,
             "${" + name + (part.param_colon ? ":?" : "?") +
                 "} always fails: the parameter is " +
                 (is_set ? "always empty" : "never set"),
             st);
        st.terminated = true;
        st.exit = ExitStatus::Known(1);
        return SymValue::Nothing();
      }
      if (may_fail) {
        // Continue on the success path: the value is refined non-empty, and
        // the script may abort here on other paths.
        st.Assume("${" + name + ":?} did not fail (value non-empty)");
        SymValue refined = part.param_colon ? raw.RestrictNonEmpty() : raw;
        st.Bind(name_sym, refined);
        return refined;
      }
      return raw;
    }

    case ParamOp::kAlternative: {
      SymValue alt = expand_arg();
      bool value_usable_possible = is_set && (!part.param_colon || !raw.MustBeEmpty());
      bool value_usable_certain =
          is_set && !maybe_unset && (!part.param_colon || !raw.CanBeEmpty());
      if (!value_usable_possible) {
        return SymValue::Concrete("");
      }
      if (value_usable_certain) {
        return alt;
      }
      return alt.UnionWith(SymValue::Concrete(""));
    }

    case ParamOp::kRemSmallSuffix:
    case ParamOp::kRemLargeSuffix:
    case ParamOp::kRemSmallPrefix:
    case ParamOp::kRemLargePrefix: {
      bool suffix = part.param_op == ParamOp::kRemSmallSuffix ||
                    part.param_op == ParamOp::kRemLargeSuffix;
      bool largest = part.param_op == ParamOp::kRemLargeSuffix ||
                     part.param_op == ParamOp::kRemLargePrefix;
      std::string pattern;
      if (part.param_arg != nullptr && StaticGlobPattern(*part.param_arg, &pattern) &&
          raw.is_concrete()) {
        return SymValue::Concrete(RemovePattern(raw.concrete(), pattern, suffix, largest));
      }
      // Symbolic operand or dynamic pattern: the result is some substring of
      // the original; over-approximate as any line. (The cd model downstream
      // recovers the precision the paper's Fig. 1 needs.)
      return SymValue::UnknownLine();
    }

    case ParamOp::kLength:
      if (raw.is_concrete() && is_set && !maybe_unset) {
        return SymValue::Concrete(std::to_string(raw.concrete().size()));
      }
      return SymValue::UnknownNumber();
  }
  return raw;
}

SymValue Evaluator::EvalCommandSub(State& st, const WordPart& part, int depth,
                                   std::optional<Provenance>* prov_out) {
  if (part.command == nullptr) {
    return SymValue::UnknownLine();
  }
  if (depth > options_.max_call_depth) {
    ++stats_->depth_cap_hits;
    return SymValue::UnknownLine();
  }
  // Substitutions run in a subshell: variable/cwd changes do not escape, but
  // file-system effects do.
  State sub = st;
  sub.stdout_lines.clear();
  sub.stdout_prov.reset();
  std::vector<State> results = ExecProgram(std::move(sub), *part.command, depth + 1);
  if (results.empty()) {
    return SymValue::Concrete("");
  }
  if (results.size() == 1) {
    State& r = results[0];
    st.sfs = r.sfs;
    st.exit = r.exit;
    if (prov_out != nullptr) {
      *prov_out = r.stdout_prov;
    }
    return r.JoinedStdout();
  }
  // Multiple inner paths: the substitution's value is the union of their
  // outputs; exit status becomes unknown unless all agree; inner FS effects
  // are dropped (they differ per path). Assumption notes record the merge.
  SymValue value = results[0].JoinedStdout();
  bool all_same_exit = results[0].exit.known;
  int code = results[0].exit.code;
  for (size_t i = 1; i < results.size(); ++i) {
    value = value.UnionWith(results[i].JoinedStdout());
    if (!results[i].exit.known || results[i].exit.code != code) {
      all_same_exit = false;
    }
  }
  st.exit = all_same_exit ? ExitStatus::Known(code) : ExitStatus::Unknown();
  // Provenance survives the merge when exactly one distinct provenance
  // produced all non-empty output and every other path printed nothing:
  // comparisons against the union then still refine through the variable
  // (e.g. Fig. 2's $(realpath "$STEAMROOT/") where the failure path is
  // silent — and realpath of the root never fails, so the dangerous values
  // always take the provenance-carrying path).
  if (prov_out != nullptr) {
    std::optional<Provenance> unique;
    bool ok = true;
    for (State& r : results) {
      if (r.JoinedStdout().MustBeEmpty()) {
        continue;
      }
      if (!r.stdout_prov.has_value()) {
        ok = false;
        break;
      }
      if (!unique.has_value()) {
        unique = r.stdout_prov;
      } else if (unique->var != r.stdout_prov->var || unique->suffix != r.stdout_prov->suffix ||
                 unique->canonicalized != r.stdout_prov->canonicalized) {
        ok = false;
        break;
      }
    }
    if (ok && unique.has_value()) {
      *prov_out = unique;
    }
  }
  return value;
}

SymValue Evaluator::EvalArith(State& st, const std::string& expr) {
  // A small integer-expression evaluator: + - * / % ( ) unary -, decimal
  // literals, and variable names with concrete integer values. Anything else
  // yields an unknown number.
  struct Parser {
    const std::string& s;
    const State& st;
    size_t i = 0;
    bool failed = false;

    void SkipWs() {
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
        ++i;
      }
    }
    long Primary() {
      SkipWs();
      if (i < s.size() && s[i] == '(') {
        ++i;
        long v = Expr();
        SkipWs();
        if (i < s.size() && s[i] == ')') {
          ++i;
        } else {
          failed = true;
        }
        return v;
      }
      if (i < s.size() && s[i] == '-') {
        ++i;
        return -Primary();
      }
      if (i < s.size() && s[i] == '$') {
        ++i;  // $name inside arithmetic.
      }
      if (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        long v = 0;
        while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
          v = v * 10 + (s[i] - '0');
          ++i;
        }
        return v;
      }
      if (i < s.size() && (std::isalpha(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
        std::string name;
        while (i < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
          name += s[i++];
        }
        const SymValue* v = st.Lookup(name);
        if (v != nullptr && v->is_concrete()) {
          errno = 0;
          char* end = nullptr;
          long value = std::strtol(v->concrete().c_str(), &end, 10);
          if (end != nullptr && *end == '\0' && !v->concrete().empty()) {
            return value;
          }
        }
        failed = true;
        return 0;
      }
      failed = true;
      return 0;
    }
    long Term() {
      long v = Primary();
      while (!failed) {
        SkipWs();
        if (i < s.size() && (s[i] == '*' || s[i] == '/' || s[i] == '%')) {
          char op = s[i++];
          long rhs = Primary();
          if ((op == '/' || op == '%') && rhs == 0) {
            failed = true;
            return 0;
          }
          v = op == '*' ? v * rhs : op == '/' ? v / rhs : v % rhs;
        } else {
          break;
        }
      }
      return v;
    }
    long Expr() {
      long v = Term();
      while (!failed) {
        SkipWs();
        if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
          char op = s[i++];
          long rhs = Term();
          v = op == '+' ? v + rhs : v - rhs;
        } else {
          break;
        }
      }
      return v;
    }
  };
  Parser p{expr, st};
  long v = p.Expr();
  p.SkipWs();
  if (p.failed || p.i != expr.size()) {
    return SymValue::UnknownNumber();
  }
  return SymValue::Concrete(std::to_string(v));
}

}  // namespace sash::symex
