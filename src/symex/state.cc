#include "symex/state.h"

namespace sash::symex {

SymValue State::JoinedStdout() const {
  if (stdout_lines.empty()) {
    return SymValue::Concrete("");
  }
  // Command substitution strips trailing newlines, so the join is simply
  // newline-separated lines.
  SymValue out = stdout_lines[0];
  for (size_t i = 1; i < stdout_lines.size(); ++i) {
    out = out.Append(SymValue::Concrete("\n")).Append(stdout_lines[i]);
  }
  return out;
}

uint64_t State::Digest() const {
  uint64_t h = 0x73746174653a0000ull;  // "state:" seed
  h = util::FnvMix64(h, terminated ? 2 : 1);
  h = util::FnvMix64(h, exit.known ? static_cast<uint64_t>(exit.code) + 2 : 1);
  h = util::FnvMix64(h, cwd.Digest());
  h = util::FnvMix64(h, vars_digest_.value());
  h = util::FnvMix64(h, sfs.Digest());
  // stdout is a sequence: mix order-dependently, length included.
  h = util::FnvMix64(h, stdout_lines.size());
  for (const SymValue& line : stdout_lines) {
    h = util::FnvMix64(h, line.Digest());
  }
  return h;
}

}  // namespace sash::symex
