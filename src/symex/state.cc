#include "symex/state.h"

namespace sash::symex {

SymValue State::JoinedStdout() const {
  if (stdout_lines.empty()) {
    return SymValue::Concrete("");
  }
  // Command substitution strips trailing newlines, so the join is simply
  // newline-separated lines.
  SymValue out = stdout_lines[0];
  for (size_t i = 1; i < stdout_lines.size(); ++i) {
    out = out.Append(SymValue::Concrete("\n")).Append(stdout_lines[i]);
  }
  return out;
}

}  // namespace sash::symex
