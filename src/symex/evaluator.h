// Internal workhorse of the symbolic engine. Split across expand.cc
// (word/parameter expansion), builtins.cc (builtin command models), and
// engine.cc (control flow and external-command specs). Not part of the
// public API — include symex/engine.h instead.
#ifndef SASH_SYMEX_EVALUATOR_H_
#define SASH_SYMEX_EVALUATOR_H_

#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "symex/engine.h"
#include "symfs/symbolic_fs.h"

namespace sash::symex {

// Result of expanding one word in one state.
struct Expanded {
  SymValue value;
  bool has_unquoted_glob = false;
  // The word was a single unquoted expansion: an empty value drops the field.
  bool droppable_if_empty = false;
  std::optional<Provenance> prov;
  std::vector<std::string> vars;  // Variables contributing to the value.
};

// Ternary verdict with per-branch refinements, produced by `test` and reused
// by other forking decisions.
struct BranchRefinement {
  std::vector<std::pair<std::string, SymValue>> rebind;
  std::vector<std::pair<symfs::PathKey, specs::PathState>> fs_assume;
};

struct TestOutcome {
  enum class Verdict { kTrue, kFalse, kUnknown };
  Verdict verdict = Verdict::kUnknown;
  BranchRefinement if_true;
  BranchRefinement if_false;
  std::string description;  // For assumption notes, e.g. "[ $x = / ]".
};

class Evaluator {
 public:
  Evaluator(const EngineOptions& options, DiagnosticSink* sink, EngineStats* stats)
      : options_(options),
        sink_(sink),
        stats_(stats),
        paranoid_merge_(options.paranoid_merge || ParanoidMergeFromEnv()) {}

  State MakeInitialState() const;

  std::vector<State> ExecProgram(State st, const syntax::Program& program, int depth);
  std::vector<State> Exec(State st, const syntax::Command& cmd, int depth);

  // --- expansion (expand.cc) ---
  Expanded ExpandWord(State& st, const syntax::Word& word, int depth);

 private:
  // engine.cc
  std::vector<State> ExecSimple(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecList(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecPipeline(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecIf(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecLoop(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecFor(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecCase(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecSubshell(State st, const syntax::Command& cmd, int depth);
  std::vector<State> ExecExternal(State st, const syntax::Command& cmd,
                                  const std::vector<Expanded>& argv, int depth);
  std::vector<State> CallFunction(State st, const syntax::Command* body,
                                  const std::vector<Expanded>& argv, int depth);

  void ApplyRedirects(State& st, const syntax::Command& cmd, int depth);
  void CheckDangerousDelete(const State& st, const syntax::Command& cmd,
                            const specs::Invocation& inv, const std::vector<Expanded>& operands);

  // Partitions states on exit status, forking unknowns. `context` feeds the
  // assumption notes.
  void ForkOnExit(std::vector<State> states, std::string_view context,
                  std::vector<State>* success, std::vector<State>* failure);

  // Applies state-count controls; returns the capped set.
  std::vector<State> Control(std::vector<State> states);

  // builtins.cc
  // Returns true when `name` was handled as a builtin (results appended).
  bool TryBuiltin(const std::string& name, State& st, const syntax::Command& cmd,
                  const std::vector<Expanded>& argv, int depth, std::vector<State>* out);
  TestOutcome EvalTest(State& st, const std::vector<Expanded>& args);
  std::vector<State> BuiltinCd(State st, const std::vector<Expanded>& argv);
  std::vector<State> BuiltinRealpath(State st, const std::vector<Expanded>& argv);

  // expand.cc
  SymValue ExpandParam(State& st, const syntax::WordPart& part, int depth);
  SymValue EvalCommandSub(State& st, const syntax::WordPart& part, int depth,
                          std::optional<Provenance>* prov_out);
  SymValue EvalArith(State& st, const std::string& expr);

  // Shared helpers.
  std::optional<symfs::PathKey> PathKeyOf(const State& st, const Expanded& e) const;
  void Emit(Severity severity, const char* code, SourceRange range, std::string message,
            const State& st, std::vector<std::string> extra_notes = {});
  const specs::SpecLibrary& lib() const {
    return options_.library != nullptr ? *options_.library
                                       : specs::SpecLibrary::BuiltinGroundTruth();
  }
  int NewStateId() { return ++next_state_id_; }

  // Whether a diagnostic with this identity was already emitted — lets hot
  // paths skip building expensive messages (value rendering, witnesses) for
  // duplicates. `code` must be the same literal later passed to Emit.
  bool AlreadyEmitted(const char* code, SourceRange range, Severity severity) const;

  static bool ParanoidMergeFromEnv() {
    const char* v = std::getenv("SASH_PARANOID_MERGE");
    return v != nullptr && std::string_view(v) != "0";
  }

  const EngineOptions& options_;
  DiagnosticSink* sink_;
  EngineStats* stats_;
  const bool paranoid_merge_ = false;
  int next_state_id_ = 0;
  std::set<std::string> emitted_;  // Dedup key: code@offset@severity.

  friend class Engine;
};

// Static glob pattern of a word (glob metacharacters preserved, expansions
// rejected). Used for case patterns. Returns false when the word contains
// dynamic parts.
bool StaticGlobPattern(const syntax::Word& word, std::string* out);

}  // namespace sash::symex

#endif  // SASH_SYMEX_EVALUATOR_H_
