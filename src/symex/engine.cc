// Control flow, external-command specification application, state-explosion
// controls, and the incorrectness criteria the engine checks natively
// (catastrophic deletion, always-failing invocations).
#include "symex/engine.h"

#include <algorithm>
#include <functional>

#include "fs/path.h"
#include "regex/glob.h"
#include "symex/evaluator.h"
#include "util/strings.h"

namespace sash::symex {

namespace {

using specs::PathState;
using symfs::Knowledge;
using symfs::PathKey;
using syntax::Command;
using syntax::CommandKind;
using syntax::ListOp;

// The "danger language": strings whose pathname expansion targets the root —
// "/", "//", "/*", "//*", ... (the normalized forms of Fig. 1's rm target).
const regex::Regex& DangerLanguage() {
  static const regex::Regex kDanger = *regex::Regex::FromPattern("/+\\*?");
  return kDanger;
}

// Names assigned anywhere inside a command (for loop widening).
std::vector<std::string> AssignedNames(const Command& cmd) {
  std::vector<std::string> out;
  syntax::Program wrapper;  // Borrowing the visitor via a fake program.
  // VisitCommands needs a Program; walk manually instead.
  std::function<void(const Command&)> walk = [&](const Command& c) {
    switch (c.kind) {
      case CommandKind::kSimple:
        for (const syntax::Assignment& a : c.simple.assignments) {
          out.push_back(a.name);
        }
        if (!c.simple.words.empty()) {
          std::string name;
          if (c.simple.words[0].IsStatic(&name) && name == "read") {
            for (size_t i = 1; i < c.simple.words.size(); ++i) {
              std::string arg;
              if (c.simple.words[i].IsStatic(&arg) && !arg.empty() && arg[0] != '-') {
                out.push_back(arg);
              }
            }
          }
        }
        break;
      case CommandKind::kPipeline:
        for (const syntax::CommandPtr& p : c.pipeline.commands) {
          walk(*p);
        }
        break;
      case CommandKind::kList:
        for (const syntax::CommandPtr& p : c.list.commands) {
          walk(*p);
        }
        break;
      case CommandKind::kSubshell:
        break;  // Subshell assignments do not escape.
      case CommandKind::kBraceGroup:
        if (c.brace.body != nullptr) {
          walk(*c.brace.body);
        }
        break;
      case CommandKind::kIf:
        if (c.if_cmd.condition != nullptr) {
          walk(*c.if_cmd.condition);
        }
        if (c.if_cmd.then_body != nullptr) {
          walk(*c.if_cmd.then_body);
        }
        if (c.if_cmd.else_body != nullptr) {
          walk(*c.if_cmd.else_body);
        }
        break;
      case CommandKind::kLoop:
        if (c.loop.condition != nullptr) {
          walk(*c.loop.condition);
        }
        if (c.loop.body != nullptr) {
          walk(*c.loop.body);
        }
        break;
      case CommandKind::kFor:
        out.push_back(c.for_cmd.var);
        if (c.for_cmd.body != nullptr) {
          walk(*c.for_cmd.body);
        }
        break;
      case CommandKind::kCase:
        for (const syntax::CaseItem& item : c.case_cmd.items) {
          if (item.body != nullptr) {
            walk(*item.body);
          }
        }
        break;
      case CommandKind::kFunctionDef:
        break;
    }
  };
  walk(cmd);
  (void)wrapper;
  return out;
}

// Exact value key for the legacy signature: concrete text or the language's
// display pattern, domain-tagged (mirrors SymValue::Digest's separation).
std::string ValueKey(const SymValue& v) {
  return v.is_concrete() ? "c:" + v.concrete() : "l:" + v.lang().pattern();
}

// The legacy rendered-string signature for merging indistinguishable states.
// The hot path compares State::Digest() instead; this stays as the slow
// ground truth for paranoid-merge cross-checks and the digest-vs-legacy
// differential. Languages are keyed by their display pattern (matching the
// digest), not by Describe(), whose >48-char sampling fallback could alias
// distinct languages with identical samples.
std::string StateSignature(const State& st, bool describe_rendering = false) {
  // describe_rendering reproduces the pre-overhaul signature exactly —
  // Describe() per value, sampling included — so the bench can measure the
  // seed-commit merge cost. Everything else uses the ValueKey form.
  auto key = [describe_rendering](const SymValue& v) {
    return describe_rendering ? v.Describe() : ValueKey(v);
  };
  std::string sig;
  sig += st.terminated ? "T" : "A";
  sig += st.exit.known ? "k" + std::to_string(st.exit.code) : "u";
  sig += "|cwd=" + key(st.cwd);
  for (const auto& [name, value] : st.vars()) {
    sig += "|" + name.str() + "=" + key(value);
    if (st.MaybeUnset(name)) {
      sig += "?";
    }
  }
  sig += "|fs:" + st.sfs.ToString();
  sig += "|out:" + std::to_string(st.stdout_lines.size());
  for (const SymValue& v : st.stdout_lines) {
    sig += "," + key(v);
  }
  return sig;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine facade
// ---------------------------------------------------------------------------

void EngineStats::PublishTo(obs::Registry* registry) const {
  if (registry == nullptr) {
    return;
  }
  registry->counter("symex.commands_executed")->Add(commands_executed);
  registry->counter("symex.forks")->Add(forks);
  registry->counter("symex.states_merged")->Add(states_merged);
  registry->counter("symex.states_dropped")->Add(states_dropped);
  registry->counter("symex.final_states")->Add(final_states);
  registry->counter("symex.fs_ops")->Add(fs_ops);
  registry->gauge("symex.states_peak")->Max(states_peak);
  registry->counter("symex.digest_collisions")->Add(digest_collisions);
  registry->counter("symex.depth_cap_hits")->Add(depth_cap_hits);
  registry->counter("symex.cancelled")->Add(cancelled);
}

Engine::Engine(EngineOptions options, DiagnosticSink* sink)
    : options_(std::move(options)), sink_(sink) {}

State Engine::MakeInitialState() const {
  Evaluator ev(options_, sink_, const_cast<EngineStats*>(&stats_));
  return ev.MakeInitialState();
}

std::vector<State> Engine::Run(const syntax::Program& program) {
  Evaluator ev(options_, sink_, &stats_);
  return RunFrom(ev.MakeInitialState(), program);
}

std::vector<State> Engine::RunFrom(State initial, const syntax::Program& program) {
  stats_ = EngineStats{};
  Evaluator ev(options_, sink_, &stats_);
  std::vector<State> finals = ev.ExecProgram(std::move(initial), program, 0);
  stats_.final_states = static_cast<int>(finals.size());
  return finals;
}

// ---------------------------------------------------------------------------
// Evaluator: top level and control flow
// ---------------------------------------------------------------------------

State Evaluator::MakeInitialState() const {
  State st;
  st.id = 0;
  st.cwd = SymValue::AbsolutePath().RestrictNonEmpty();
  st.Bind("PWD", st.cwd);
  st.Bind("HOME", SymValue::Concrete("/home/user"));
  st.Bind("PATH", SymValue::Concrete("/usr/local/bin:/usr/bin:/bin"));
  std::optional<regex::Regex> script = regex::Regex::FromPattern(options_.script_path_pattern);
  st.Bind("0", script.has_value() ? SymValue::Language(*script) : SymValue::UnknownLine());
  for (int i = 1; i <= options_.positional_params; ++i) {
    st.BindMaybeUnset(std::to_string(i), SymValue::UnknownLine());
  }
  // Annotated variable constraints (§4 ergonomic annotations).
  for (const auto& [name, pattern] : options_.var_patterns) {
    std::optional<regex::Regex> lang = regex::Regex::FromPattern(pattern);
    if (lang.has_value()) {
      st.Bind(name, SymValue::Language(std::move(*lang)));
    }
  }
  return st;
}

std::vector<State> Evaluator::ExecProgram(State st, const syntax::Program& program, int depth) {
  if (program.body == nullptr) {
    st.exit = ExitStatus::Known(0);
    return {std::move(st)};
  }
  return Exec(std::move(st), *program.body, depth);
}

std::vector<State> Evaluator::Exec(State st, const Command& cmd, int depth) {
  if (st.terminated) {
    return {std::move(st)};
  }
  if (options_.cancel != nullptr && options_.cancel->CheckStep()) {
    // Budget exhausted: wind this path down with an unknown exit. The
    // caller's loops see terminated states and fall through quickly, so the
    // whole engine drains within one pass over the live set.
    stats_->cancelled = 1;
    st.terminated = true;
    st.exit = ExitStatus::Unknown();
    return {std::move(st)};
  }
  if (depth > options_.max_call_depth) {
    ++stats_->depth_cap_hits;
    st.exit = ExitStatus::Unknown();
    return {std::move(st)};
  }
  ++stats_->commands_executed;
  switch (cmd.kind) {
    case CommandKind::kSimple:
      return ExecSimple(std::move(st), cmd, depth);
    case CommandKind::kPipeline:
      return ExecPipeline(std::move(st), cmd, depth);
    case CommandKind::kList:
      return ExecList(std::move(st), cmd, depth);
    case CommandKind::kSubshell:
      return ExecSubshell(std::move(st), cmd, depth);
    case CommandKind::kBraceGroup: {
      std::vector<State> out =
          cmd.brace.body != nullptr ? Exec(std::move(st), *cmd.brace.body, depth)
                                    : std::vector<State>{};
      for (State& s : out) {
        ApplyRedirects(s, cmd, depth);
      }
      return out;
    }
    case CommandKind::kIf:
      return ExecIf(std::move(st), cmd, depth);
    case CommandKind::kLoop:
      return ExecLoop(std::move(st), cmd, depth);
    case CommandKind::kFor:
      return ExecFor(std::move(st), cmd, depth);
    case CommandKind::kCase:
      return ExecCase(std::move(st), cmd, depth);
    case CommandKind::kFunctionDef:
      st.functions[cmd.function.sym()] = cmd.function.body;
      st.exit = ExitStatus::Known(0);
      return {std::move(st)};
  }
  return {std::move(st)};
}

void Evaluator::ForkOnExit(std::vector<State> states, std::string_view context,
                           std::vector<State>* success, std::vector<State>* failure) {
  for (State& s : states) {
    if (s.terminated) {
      // Terminated states flow to neither branch; the caller collects them
      // via the surviving set it threads through. Route by exit anyway so
      // callers that ignore termination behave sanely.
    }
    if (s.exit.MustSucceed()) {
      success->push_back(std::move(s));
    } else if (s.exit.MustFail()) {
      failure->push_back(std::move(s));
    } else {
      ++stats_->forks;
      State ok = s;
      ok.id = NewStateId();
      ok.exit = ExitStatus::Known(0);
      ok.Assume("assumed " + std::string(context) + " succeeded");
      State bad = std::move(s);
      bad.exit = ExitStatus::Known(1);
      bad.assumed_failure = true;
      bad.Assume("assumed " + std::string(context) + " failed");
      success->push_back(std::move(ok));
      failure->push_back(std::move(bad));
    }
  }
}

std::vector<State> Evaluator::Control(std::vector<State> states) {
  if (options_.merge_identical_states && states.size() > 1) {
    std::vector<State> merged;
    merged.reserve(states.size());
    if (options_.digest_merge) {
      // Hot path: compare 64-bit digests, keep the first occurrence (same
      // survivor rule as the legacy loop). Under paranoid merging, every
      // digest hit is cross-checked against the legacy signature; a
      // mismatch is a collision — counted, and the state kept separate.
      std::unordered_map<uint64_t, size_t> seen;
      seen.reserve(states.size() * 2);
      for (State& s : states) {
        uint64_t digest = s.Digest();
        auto [it, inserted] = seen.emplace(digest, merged.size());
        if (inserted) {
          merged.push_back(std::move(s));
          continue;
        }
        if (paranoid_merge_ &&
            StateSignature(s) != StateSignature(merged[it->second])) {
          ++stats_->digest_collisions;
          merged.push_back(std::move(s));
          continue;
        }
        ++stats_->states_merged;
      }
    } else {
      std::map<std::string, size_t> seen;
      for (State& s : states) {
        std::string sig = StateSignature(s, options_.legacy_describe_signature);
        auto it = seen.find(sig);
        if (it == seen.end()) {
          seen.emplace(std::move(sig), merged.size());
          merged.push_back(std::move(s));
        } else {
          ++stats_->states_merged;
        }
      }
    }
    states = std::move(merged);
  }
  if (static_cast<int>(states.size()) > options_.max_states) {
    // Overflow drop. Order the victims by digest (stable: arrival order
    // breaks ties) so which states survive does not depend on exploration
    // order — merging on/off or batch parallelism must not change which
    // diagnostic survives a truncation. Only sorts when overflowing:
    // downstream execution order is observable in witness notes, so the
    // common (non-overflow) path must preserve arrival order.
    stats_->states_dropped += static_cast<int>(states.size()) - options_.max_states;
    std::stable_sort(states.begin(), states.end(),
                     [](const State& a, const State& b) {
                       return a.Digest() < b.Digest();
                     });
    states.resize(static_cast<size_t>(options_.max_states));
  }
  stats_->states_peak = std::max(stats_->states_peak, static_cast<int>(states.size()));
  return states;
}

std::vector<State> Evaluator::ExecList(State st, const Command& cmd, int depth) {
  std::vector<State> cur{std::move(st)};
  const size_t n = cmd.list.commands.size();
  for (size_t i = 0; i < n; ++i) {
    std::vector<State> run;
    std::vector<State> skip;
    if (i == 0) {
      run = std::move(cur);
    } else {
      ListOp prev = cmd.list.ops[i - 1];
      switch (prev) {
        case ListOp::kSeq:
          run = std::move(cur);
          break;
        case ListOp::kBackground:
          // The previous command "ran in the background": its effects are
          // already applied (sequential approximation); status resets to 0.
          for (State& s : cur) {
            s.exit = ExitStatus::Known(0);
          }
          run = std::move(cur);
          break;
        case ListOp::kAnd:
          ForkOnExit(std::move(cur), "previous command", &run, &skip);
          break;
        case ListOp::kOr: {
          std::vector<State> tmp_success;
          ForkOnExit(std::move(cur), "previous command", &tmp_success, &run);
          skip = std::move(tmp_success);
          break;
        }
      }
    }
    std::vector<State> next = std::move(skip);
    for (State& s : run) {
      if (s.terminated) {
        next.push_back(std::move(s));
        continue;
      }
      std::vector<State> results = Exec(std::move(s), *cmd.list.commands[i], depth);
      for (State& r : results) {
        next.push_back(std::move(r));
      }
    }
    cur = Control(std::move(next));
  }
  return cur;
}

std::vector<State> Evaluator::ExecPipeline(State st, const Command& cmd, int depth) {
  // Sequential approximation: stages run left to right against the same
  // (evolving) file-system state; data flow between stages is the stream
  // type system's concern (sash::stream), not the symbolic engine's.
  std::vector<State> cur{std::move(st)};
  for (const syntax::CommandPtr& stage : cmd.pipeline.commands) {
    std::vector<State> next;
    for (State& s : cur) {
      if (s.terminated) {
        next.push_back(std::move(s));
        continue;
      }
      // Each stage writes to a fresh pipe, not the captured stdout; only the
      // final stage's output is observable by a substitution. Model: clear
      // intermediate stdout.
      s.stdout_lines.clear();
      s.stdout_prov.reset();
      std::vector<State> results = Exec(std::move(s), *stage, depth);
      for (State& r : results) {
        next.push_back(std::move(r));
      }
    }
    cur = Control(std::move(next));
  }
  if (cmd.pipeline.negated) {
    for (State& s : cur) {
      if (s.exit.known) {
        s.exit = ExitStatus::Known(s.exit.code == 0 ? 1 : 0);
      }
    }
  }
  return cur;
}

std::vector<State> Evaluator::ExecIf(State st, const Command& cmd, int depth) {
  std::vector<State> cond_states =
      cmd.if_cmd.condition != nullptr ? Exec(std::move(st), *cmd.if_cmd.condition, depth)
                                      : std::vector<State>{};
  std::vector<State> taken;
  std::vector<State> not_taken;
  ForkOnExit(std::move(cond_states), "if condition", &taken, &not_taken);

  std::vector<State> out;
  for (State& s : taken) {
    if (s.terminated || cmd.if_cmd.then_body == nullptr) {
      out.push_back(std::move(s));
      continue;
    }
    std::vector<State> results = Exec(std::move(s), *cmd.if_cmd.then_body, depth);
    for (State& r : results) {
      out.push_back(std::move(r));
    }
  }
  for (State& s : not_taken) {
    if (s.terminated || cmd.if_cmd.else_body == nullptr) {
      if (!s.terminated) {
        s.exit = ExitStatus::Known(0);  // `if` with untaken branch exits 0.
      }
      out.push_back(std::move(s));
      continue;
    }
    std::vector<State> results = Exec(std::move(s), *cmd.if_cmd.else_body, depth);
    for (State& r : results) {
      out.push_back(std::move(r));
    }
  }
  std::vector<State> controlled = Control(std::move(out));
  for (State& s : controlled) {
    ApplyRedirects(s, cmd, depth);
  }
  return controlled;
}

std::vector<State> Evaluator::ExecLoop(State st, const Command& cmd, int depth) {
  std::vector<State> live{std::move(st)};
  std::vector<State> out;
  for (int iter = 0; iter <= options_.loop_unroll && !live.empty(); ++iter) {
    std::vector<State> cond_states;
    for (State& s : live) {
      if (s.terminated) {
        out.push_back(std::move(s));
        continue;
      }
      std::vector<State> results =
          cmd.loop.condition != nullptr ? Exec(std::move(s), *cmd.loop.condition, depth)
                                        : std::vector<State>{std::move(s)};
      for (State& r : results) {
        cond_states.push_back(std::move(r));
      }
    }
    std::vector<State> enter;
    std::vector<State> leave;
    if (cmd.loop.until) {
      ForkOnExit(std::move(cond_states), "loop condition", &leave, &enter);
    } else {
      ForkOnExit(std::move(cond_states), "loop condition", &enter, &leave);
    }
    for (State& s : leave) {
      s.exit = ExitStatus::Known(0);
      out.push_back(std::move(s));
    }
    if (iter == options_.loop_unroll) {
      // Widen: beyond the unroll budget, assume the loop eventually exits
      // with body-assigned variables holding unknown values.
      std::vector<std::string> havoc =
          cmd.loop.body != nullptr ? AssignedNames(*cmd.loop.body) : std::vector<std::string>{};
      for (State& s : enter) {
        for (const std::string& name : havoc) {
          s.Bind(name, SymValue::Unknown());
        }
        s.exit = ExitStatus::Known(0);
        s.Assume("loop widened after " + std::to_string(options_.loop_unroll) + " iterations");
        out.push_back(std::move(s));
      }
      break;
    }
    std::vector<State> next;
    for (State& s : enter) {
      if (cmd.loop.body == nullptr) {
        next.push_back(std::move(s));
        continue;
      }
      std::vector<State> results = Exec(std::move(s), *cmd.loop.body, depth);
      for (State& r : results) {
        if (r.terminated) {
          out.push_back(std::move(r));
        } else {
          next.push_back(std::move(r));
        }
      }
    }
    live = Control(std::move(next));
  }
  std::vector<State> controlled = Control(std::move(out));
  for (State& s : controlled) {
    ApplyRedirects(s, cmd, depth);
  }
  return controlled;
}

std::vector<State> Evaluator::ExecFor(State st, const Command& cmd, int depth) {
  // Expand the word list; fully concrete short lists iterate precisely.
  std::vector<Expanded> items;
  bool all_concrete = true;
  for (const syntax::Word& w : cmd.for_cmd.words) {
    Expanded e = ExpandWord(st, w, depth);
    if (!e.value.is_concrete() || e.has_unquoted_glob) {
      all_concrete = false;
    }
    items.push_back(std::move(e));
  }
  std::vector<State> cur{std::move(st)};
  if (all_concrete && cmd.for_cmd.has_in &&
      static_cast<int>(items.size()) <= options_.max_for_iterations) {
    for (const Expanded& item : items) {
      std::vector<State> next;
      for (State& s : cur) {
        if (s.terminated) {
          next.push_back(std::move(s));
          continue;
        }
        s.Bind(cmd.for_cmd.var_sym(), item.value);
        if (cmd.for_cmd.body == nullptr) {
          next.push_back(std::move(s));
          continue;
        }
        std::vector<State> results = Exec(std::move(s), *cmd.for_cmd.body, depth);
        for (State& r : results) {
          next.push_back(std::move(r));
        }
      }
      cur = Control(std::move(next));
    }
  } else {
    // Symbolic iteration: one pass with the variable unknown, then widen.
    std::vector<State> next;
    for (State& s : cur) {
      s.Bind(cmd.for_cmd.var_sym(), SymValue::UnknownLine());
      s.Assume("for-loop over a dynamic list (analyzed one symbolic iteration)");
      if (cmd.for_cmd.body == nullptr) {
        next.push_back(std::move(s));
        continue;
      }
      std::vector<State> results = Exec(std::move(s), *cmd.for_cmd.body, depth);
      for (State& r : results) {
        if (!r.terminated) {
          for (const std::string& name : AssignedNames(*cmd.for_cmd.body)) {
            r.Bind(name, SymValue::Unknown());
          }
        }
        next.push_back(std::move(r));
      }
    }
    cur = Control(std::move(next));
  }
  for (State& s : cur) {
    ApplyRedirects(s, cmd, depth);
  }
  return cur;
}

std::vector<State> Evaluator::ExecCase(State st, const Command& cmd, int depth) {
  Expanded subject = ExpandWord(st, cmd.case_cmd.subject, depth);
  std::vector<State> remaining{std::move(st)};
  std::vector<State> out;

  for (const syntax::CaseItem& item : cmd.case_cmd.items) {
    if (remaining.empty()) {
      break;
    }
    // Combine patterns: the item matches if any pattern does.
    bool always = false;
    bool may = false;
    std::optional<regex::Regex> item_lang;
    for (const syntax::Word& pat : item.patterns) {
      std::string glob;
      if (!StaticGlobPattern(pat, &glob)) {
        may = true;  // Dynamic pattern: may match anything.
        item_lang.reset();
        break;
      }
      regex::Regex lang = regex::GlobLanguage(glob);
      if (subject.value.MustBeIn(lang)) {
        always = true;
        break;
      }
      if (subject.value.CanBeIn(lang)) {
        may = true;
        item_lang = item_lang.has_value() ? item_lang->Union(lang) : lang;
      }
    }

    auto run_body = [&](State s, bool add_note) -> std::vector<State> {
      if (add_note) {
        s.Assume("assumed case matched '" + item.patterns[0].ToDisplayString() + "'");
      }
      // Refine the subject variable in the matched branch.
      if (item_lang.has_value() && subject.prov.has_value() && subject.prov->suffix.empty() &&
          !subject.prov->canonicalized) {
        const SymValue* var = s.Lookup(subject.prov->var);
        if (var != nullptr) {
          s.Bind(subject.prov->var, var->RestrictTo(*item_lang));
        }
      }
      if (item.body == nullptr) {
        s.exit = ExitStatus::Known(0);
        return {std::move(s)};
      }
      return Exec(std::move(s), *item.body, depth);
    };

    if (always) {
      for (State& s : remaining) {
        std::vector<State> results = run_body(std::move(s), /*add_note=*/false);
        for (State& r : results) {
          out.push_back(std::move(r));
        }
      }
      remaining.clear();
      break;
    }
    if (may) {
      ++stats_->forks;
      std::vector<State> still_remaining;
      for (State& s : remaining) {
        State matched = s;
        matched.id = NewStateId();
        std::vector<State> results = run_body(std::move(matched), /*add_note=*/true);
        for (State& r : results) {
          out.push_back(std::move(r));
        }
        // Not-matched branch: refine the subject away from the item language.
        if (item_lang.has_value() && subject.prov.has_value() &&
            subject.prov->suffix.empty() && !subject.prov->canonicalized) {
          const SymValue* var = s.Lookup(subject.prov->var);
          if (var != nullptr) {
            s.Bind(subject.prov->var, var->RestrictTo(item_lang->Complement()));
          }
        }
        s.Assume("assumed case did not match '" + item.patterns[0].ToDisplayString() + "'");
        still_remaining.push_back(std::move(s));
      }
      remaining = std::move(still_remaining);
    }
    // `never`: fall through to the next item with `remaining` unchanged.
  }
  // States where no item matched exit 0 with no body run (Fig. 5's silent
  // fall-through).
  for (State& s : remaining) {
    s.exit = ExitStatus::Known(0);
    out.push_back(std::move(s));
  }
  std::vector<State> controlled = Control(std::move(out));
  for (State& s : controlled) {
    ApplyRedirects(s, cmd, depth);
  }
  return controlled;
}

std::vector<State> Evaluator::ExecSubshell(State st, const Command& cmd, int depth) {
  if (cmd.subshell.body == nullptr) {
    st.exit = ExitStatus::Known(0);
    return {std::move(st)};
  }
  State parent = st;
  std::vector<State> results = Exec(std::move(st), *cmd.subshell.body, depth + 1);
  // Variable/cwd changes do not escape the subshell; FS effects and exit do.
  for (State& r : results) {
    r.RestoreScopeFrom(parent);
    r.cwd = parent.cwd;
    r.terminated = false;  // `exit` in a subshell only exits the subshell.
    ApplyRedirects(r, cmd, depth);
  }
  return results;
}

std::vector<State> Evaluator::CallFunction(State st, const Command* body,
                                           const std::vector<Expanded>& argv, int depth) {
  // Save positionals, bind new ones from the call, run, restore.
  std::map<std::string, SymValue> saved;
  std::set<std::string> saved_maybe;
  for (int i = 1; i <= 9; ++i) {
    std::string name = std::to_string(i);
    const SymValue* v = st.Lookup(name);
    if (v != nullptr) {
      saved.emplace(name, *v);
      if (st.MaybeUnset(name)) {
        saved_maybe.insert(name);
      }
    }
    st.Unset(name);
  }
  for (size_t i = 1; i < argv.size() && i <= 9; ++i) {
    st.Bind(std::to_string(i), argv[i].value);
  }
  std::vector<State> results = Exec(std::move(st), *body, depth + 1);
  for (State& r : results) {
    for (int i = 1; i <= 9; ++i) {
      std::string name = std::to_string(i);
      r.Unset(name);
      auto it = saved.find(name);
      if (it != saved.end()) {
        if (saved_maybe.count(name) > 0) {
          r.BindMaybeUnset(name, it->second);
        } else {
          r.Bind(name, it->second);
        }
      }
    }
    r.terminated = false;  // `return`/`exit` modeled as ending the function.
  }
  return results;
}

// ---------------------------------------------------------------------------
// Simple commands
// ---------------------------------------------------------------------------

std::vector<State> Evaluator::ExecSimple(State st, const Command& cmd, int depth) {
  // Assignment prefixes.
  for (const syntax::Assignment& a : cmd.simple.assignments) {
    if (st.terminated) {
      return {std::move(st)};
    }
    Expanded v = ExpandWord(st, a.value, depth);
    st.Bind(a.sym(), v.value);
  }
  if (st.terminated) {
    return {std::move(st)};
  }

  // Expand argv with empty-field dropping.
  std::vector<Expanded> argv;
  for (const syntax::Word& w : cmd.simple.words) {
    Expanded e = ExpandWord(st, w, depth);
    if (st.terminated) {
      return {std::move(st)};
    }
    if (e.droppable_if_empty && e.value.MustBeEmpty()) {
      continue;
    }
    argv.push_back(std::move(e));
  }
  if (argv.empty()) {
    ApplyRedirects(st, cmd, depth);
    // A bare assignment exits 0 unless a command substitution ran, in which
    // case its exit status is kept (POSIX 2.9.1).
    bool has_cmdsub = false;
    std::function<void(const syntax::WordPart&)> scan = [&](const syntax::WordPart& p) {
      if (p.kind == syntax::WordPartKind::kCommandSub) {
        has_cmdsub = true;
      }
      for (const syntax::WordPart& c : p.children) {
        scan(c);
      }
    };
    for (const syntax::Assignment& a : cmd.simple.assignments) {
      for (const syntax::WordPart& p : a.value.parts) {
        scan(p);
      }
    }
    if (!has_cmdsub) {
      st.exit = ExitStatus::Known(0);
    }
    return {std::move(st)};
  }

  if (!argv[0].value.is_concrete()) {
    Emit(Severity::kInfo, kCodeUnknownCommand, cmd.range,
         "command name is dynamic (" + argv[0].value.Describe() + "); effects unknown", st);
    st.exit = ExitStatus::Unknown();
    ApplyRedirects(st, cmd, depth);
    return {std::move(st)};
  }
  const std::string name = argv[0].value.concrete();

  // User-defined functions shadow everything else here. Find() is
  // non-inserting: a name never interned was never defined.
  if (!st.functions.empty()) {
    auto name_sym = util::Symbol::Find(name);
    if (name_sym.has_value()) {
      auto fn = st.functions.find(*name_sym);
      if (fn != st.functions.end() && fn->second != nullptr) {
        std::vector<State> results = CallFunction(std::move(st), fn->second, argv, depth);
        for (State& r : results) {
          ApplyRedirects(r, cmd, depth);
        }
        return Control(std::move(results));
      }
    }
  }

  std::vector<State> out;
  if (TryBuiltin(name, st, cmd, argv, depth, &out)) {
    for (State& s : out) {
      ApplyRedirects(s, cmd, depth);
    }
    return Control(std::move(out));
  }

  std::vector<State> results = ExecExternal(std::move(st), cmd, argv, depth);
  for (State& s : results) {
    ApplyRedirects(s, cmd, depth);
  }
  return Control(std::move(results));
}

std::vector<State> Evaluator::ExecExternal(State st, const Command& cmd,
                                           const std::vector<Expanded>& argv, int depth) {
  (void)depth;
  const std::string name = argv[0].value.concrete();
  const specs::CommandSpec* spec = lib().Find(name);
  if (spec == nullptr) {
    Emit(Severity::kInfo, kCodeUnknownCommand, cmd.range,
         "no specification for command '" + name + "'; its effects are not modeled", st);
    st.exit = ExitStatus::Unknown();
    st.stdout_lines.push_back(SymValue::UnknownLine());
    st.stdout_prov.reset();
    return {std::move(st)};
  }

  // Build a concrete argv for the syntax-spec parser; symbolic values become
  // operand placeholders (they cannot be flags we reason about).
  std::vector<std::string> args;
  std::vector<int> operand_placeholder;  // args index -> argv index.
  for (size_t i = 1; i < argv.size(); ++i) {
    if (argv[i].value.is_concrete()) {
      args.push_back(argv[i].value.concrete());
    } else {
      args.push_back("\x01SYM" + std::to_string(i) + "\x01");
    }
    operand_placeholder.push_back(static_cast<int>(i));
  }
  Result<specs::Invocation> inv = specs::ParseInvocation(spec->syntax, args);
  if (!inv.ok()) {
    Emit(Severity::kWarning, kCodeEmptyExpansionArg, cmd.range,
         name + ": invocation is invalid on this path (" + inv.status().message() + ")", st);
    st.exit = ExitStatus::Known(2);
    return {std::move(st)};
  }

  // Map operand strings back to their Expanded values.
  std::vector<Expanded> operands;
  for (const std::string& op : inv->operands) {
    if (sash::StartsWith(op, "\x01SYM")) {
      int idx = std::atoi(op.substr(4).c_str());
      operands.push_back(argv[static_cast<size_t>(idx)]);
    } else {
      Expanded e;
      e.value = SymValue::Concrete(op);
      // Recover glob/provenance info by matching against the original argv.
      for (size_t i = 1; i < argv.size(); ++i) {
        if (argv[i].value.is_concrete() && argv[i].value.concrete() == op) {
          e = argv[i];
          break;
        }
      }
      operands.push_back(std::move(e));
    }
  }

  CheckDangerousDelete(st, cmd, *inv, operands);

  // Per-operand path keys and known states; only path-kind operands are
  // file-system relevant (a grep pattern or curl URL never gets a key).
  std::vector<const specs::OperandSpec*> slots =
      specs::AssignOperands(spec->syntax, static_cast<int>(operands.size()));
  std::vector<std::optional<PathKey>> keys;
  std::vector<PathState> known;
  for (size_t i = 0; i < operands.size(); ++i) {
    std::optional<PathKey> key;
    if (slots[i] != nullptr && slots[i]->kind == specs::ValueKind::kPath) {
      key = PathKeyOf(st, operands[i]);
    }
    known.push_back(key.has_value() ? st.sfs.Query(*key) : PathState::kAny);
    keys.push_back(std::move(key));
  }

  // Three-valued case selection: walk ordered cases, collecting possible
  // ones, stopping at the first definite one.
  struct Branch {
    const specs::SpecCase* c;
    bool definite;
  };
  std::vector<Branch> branches;
  for (const specs::SpecCase& c : spec->cases) {
    if (!c.FlagsMatch(*inv)) {
      continue;
    }
    bool contradicted = false;
    bool all_known = true;
    for (const specs::PreCond& pre : c.pre) {
      for (int idx : specs::SelectOperands(pre.sel, static_cast<int>(operands.size()))) {
        Knowledge k = keys[static_cast<size_t>(idx)].has_value()
                          ? st.sfs.CheckRequirement(*keys[static_cast<size_t>(idx)], pre.state)
                          : (pre.state == PathState::kAny ? Knowledge::kKnown
                                                          : Knowledge::kUnknown);
        if (k == Knowledge::kContradiction) {
          contradicted = true;
          break;
        }
        if (k == Knowledge::kUnknown) {
          all_known = false;
        }
      }
      if (contradicted) {
        break;
      }
    }
    if (contradicted) {
      continue;
    }
    branches.push_back(Branch{&c, all_known});
    if (all_known) {
      break;
    }
  }

  if (branches.empty()) {
    st.exit = ExitStatus::Unknown();
    return {std::move(st)};
  }

  // Always-fails criterion: the only reachable behavior fails.
  bool all_fail = true;
  for (const Branch& b : branches) {
    if (b.c->exit_code == 0 || b.c->exit_code == -1) {
      all_fail = false;
    }
  }
  if (all_fail) {
    std::string detail = branches.size() == 1 && branches[0].definite
                             ? "the invocation always fails"
                             : "every reachable behavior of this invocation fails";
    Emit(Severity::kError, kCodeAlwaysFails, cmd.range,
         name + ": " + detail + " (exit " + std::to_string(branches[0].c->exit_code) + ")", st,
         {"precondition cannot hold: " + branches[0].c->ToHoareString(name)});
  }

  auto apply_case = [&](State s, const specs::SpecCase& c, bool assume_pre) -> State {
    if (assume_pre) {
      for (const specs::PreCond& pre : c.pre) {
        if (pre.state == PathState::kAny) {
          continue;
        }
        for (int idx : specs::SelectOperands(pre.sel, static_cast<int>(operands.size()))) {
          if (keys[static_cast<size_t>(idx)].has_value()) {
            s.sfs.Assume(*keys[static_cast<size_t>(idx)], pre.state);
            ++stats_->fs_ops;
          }
        }
      }
    }
    for (const specs::Effect& eff : c.effects) {
      for (int idx : specs::SelectOperands(eff.sel, static_cast<int>(operands.size()))) {
        const std::optional<PathKey>& key = keys[static_cast<size_t>(idx)];
        if (!key.has_value()) {
          continue;
        }
        switch (eff.kind) {
          case specs::EffectKind::kDeleteTree:
          case specs::EffectKind::kDeleteFile:
          case specs::EffectKind::kDeleteEmptyDir:
            s.sfs.ApplyDeleteTree(*key);
            ++stats_->fs_ops;
            break;
          case specs::EffectKind::kCreateFile:
          case specs::EffectKind::kTruncateWrite:
            s.sfs.ApplyCreateFile(*key);
            ++stats_->fs_ops;
            break;
          case specs::EffectKind::kCreateDir:
            s.sfs.ApplyCreateDir(*key);
            ++stats_->fs_ops;
            break;
          case specs::EffectKind::kWriteUnder:
            s.sfs.Assume(*key, PathState::kExists);
            ++stats_->fs_ops;
            break;
          case specs::EffectKind::kCopyToLast:
          case specs::EffectKind::kMoveToLast: {
            if (!operands.empty()) {
              std::optional<PathKey> dst = keys.back();
              if (dst.has_value()) {
                s.sfs.Assume(*dst, PathState::kExists);
                ++stats_->fs_ops;
              }
            }
            if (eff.kind == specs::EffectKind::kMoveToLast) {
              s.sfs.ApplyDeleteTree(*key);
              ++stats_->fs_ops;
            }
            break;
          }
          case specs::EffectKind::kReadFile:
          case specs::EffectKind::kNone:
            break;
        }
      }
    }
    s.exit = c.exit_code >= 0 ? ExitStatus::Known(c.exit_code) : ExitStatus::Unknown();
    if (c.exit_code > 0) {
      s.assumed_failure = true;
    }
    if (c.stdout_nonempty) {
      if (!spec->stdout_line_type.empty()) {
        std::optional<regex::Regex> t = regex::Regex::FromPattern(spec->stdout_line_type);
        s.stdout_lines.push_back(t.has_value() ? SymValue::Language(*t)
                                               : SymValue::UnknownLine());
      } else {
        s.stdout_lines.push_back(SymValue::UnknownLine());
      }
      s.stdout_prov.reset();
    }
    return s;
  };

  std::vector<State> out;
  if (branches.size() == 1) {
    out.push_back(apply_case(std::move(st), *branches[0].c, !branches[0].definite));
  } else {
    stats_->forks += static_cast<int>(branches.size()) - 1;
    for (size_t i = 0; i < branches.size(); ++i) {
      State s = st;
      if (i > 0) {
        s.id = NewStateId();
      }
      s.Assume("assumed " + name + " behaved as " + branches[i].c->ToHoareString(name));
      out.push_back(apply_case(std::move(s), *branches[i].c, /*assume_pre=*/true));
    }
  }
  return out;
}

void Evaluator::CheckDangerousDelete(const State& st, const Command& cmd,
                                     const specs::Invocation& inv,
                                     const std::vector<Expanded>& operands) {
  if (inv.command != "rm") {
    return;
  }
  // Both branches below emit kCodeDeleteRoot at cmd.range; once one fired,
  // re-running the language intersections and witness search for every
  // surviving state is pure waste.
  if (AlreadyEmitted(kCodeDeleteRoot, cmd.range, Severity::kError)) {
    return;
  }
  const bool recursive = inv.HasFlag('r') || inv.HasFlag('R');
  for (const Expanded& op : operands) {
    // Dangerous shapes: the operand may expand to the root or a root glob.
    bool relevant = recursive || op.has_unquoted_glob;
    if (!relevant) {
      continue;
    }
    if (op.value.MustBeIn(DangerLanguage())) {
      std::vector<std::string> notes;
      notes.push_back("the operand always targets the file system root");
      Emit(Severity::kError, kCodeDeleteRoot, cmd.range,
           "rm " + std::string(recursive ? "-r" : "") +
               " always deletes from the file system root (operand " + op.value.Describe() + ")",
           st, std::move(notes));
    } else if (op.value.CanBeIn(DangerLanguage())) {
      std::vector<std::string> notes;
      std::optional<std::string> witness =
          op.value.is_concrete()
              ? std::optional<std::string>(op.value.concrete())
              : op.value.lang().Intersect(DangerLanguage()).Witness();
      if (witness.has_value()) {
        notes.push_back("dangerous expansion: '" + EscapeForDisplay(*witness) + "'");
      }
      if (!op.vars.empty()) {
        notes.push_back("occurs when " + Join(op.vars, ", ") +
                        " expand(s) to the empty string or '/'");
      }
      Emit(Severity::kError, kCodeDeleteRoot, cmd.range,
           "rm may delete from the file system root: operand " + op.value.Describe() +
               " can expand to a root path",
           st, std::move(notes));
    }
  }
}

void Evaluator::ApplyRedirects(State& st, const Command& cmd, int depth) {
  for (const syntax::Redirect& r : cmd.redirects) {
    switch (r.op) {
      case syntax::RedirOp::kOut:
      case syntax::RedirOp::kAppend:
      case syntax::RedirOp::kClobber: {
        Expanded target = ExpandWord(st, r.target, depth);
        std::optional<PathKey> key = PathKeyOf(st, target);
        if (key.has_value()) {
          st.sfs.ApplyCreateFile(*key);
          ++stats_->fs_ops;
        }
        break;
      }
      case syntax::RedirOp::kIn:
      case syntax::RedirOp::kReadWrite: {
        Expanded target = ExpandWord(st, r.target, depth);
        std::optional<PathKey> key = PathKeyOf(st, target);
        if (key.has_value()) {
          Knowledge k = st.sfs.CheckRequirement(*key, PathState::kIsFile);
          if (k == Knowledge::kContradiction) {
            Emit(Severity::kError, kCodeAlwaysFails, r.range,
                 "input redirection from " + target.value.Describe() +
                     " always fails: the file cannot exist",
                 st);
            st.exit = ExitStatus::Known(1);
          } else if (k == Knowledge::kUnknown) {
            st.sfs.Assume(*key, PathState::kIsFile);
            ++stats_->fs_ops;
          }
        }
        break;
      }
      case syntax::RedirOp::kHereDoc:
      case syntax::RedirOp::kHereDocTab:
      case syntax::RedirOp::kDupIn:
      case syntax::RedirOp::kDupOut:
        break;
    }
  }
}

namespace {
std::string EmitKey(const char* code, SourceRange range, Severity severity) {
  return std::string(code) + "@" + std::to_string(range.begin.offset) + "@" +
         std::to_string(static_cast<int>(severity));
}
}  // namespace

bool Evaluator::AlreadyEmitted(const char* code, SourceRange range,
                               Severity severity) const {
  return options_.emit_dedup_early_out && emitted_.count(EmitKey(code, range, severity)) > 0;
}

void Evaluator::Emit(Severity severity, const char* code, SourceRange range, std::string message,
                     const State& st, std::vector<std::string> extra_notes) {
  std::string key = EmitKey(code, range, severity);
  if (!emitted_.insert(key).second) {
    return;
  }
  Diagnostic& d = sink_->Emit(severity, code, range, std::move(message));
  for (std::string& note : extra_notes) {
    d.notes.push_back(DiagnosticNote{{}, std::move(note)});
  }
  // Attach the path condition so users see *when* the bug bites.
  size_t shown = 0;
  for (const std::string& assumption : st.assumptions) {
    if (++shown > 4) {
      d.notes.push_back(DiagnosticNote{{}, "(further assumptions elided)"});
      break;
    }
    d.notes.push_back(DiagnosticNote{{}, "path condition: " + assumption});
  }
}

}  // namespace sash::symex
