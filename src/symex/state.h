// Execution state for the symbolic engine: variable store, working directory,
// exit status, symbolic file system, accumulated stdout, and the path
// condition (as human-readable assumptions used in witness notes).
#ifndef SASH_SYMEX_STATE_H_
#define SASH_SYMEX_STATE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "symex/value.h"
#include "symfs/symbolic_fs.h"
#include "syntax/ast.h"

namespace sash::symex {

// Abstract exit status: a known code or "some code, 0 or nonzero unknown".
struct ExitStatus {
  bool known = true;
  int code = 0;

  static ExitStatus Known(int c) { return ExitStatus{true, c}; }
  static ExitStatus Unknown() { return ExitStatus{false, 0}; }

  bool MustSucceed() const { return known && code == 0; }
  bool MustFail() const { return known && code != 0; }
  bool CanSucceed() const { return !known || code == 0; }
  bool CanFail() const { return !known || code != 0; }
};

// How a value was computed from a variable — enough structure to push test
// refinements back onto the variable (the paper's context-sensitivity: "it
// concludes safety ... by tracking constraints on variable contents,
// including those from conditionals").
struct Provenance {
  std::string var;           // The source variable.
  std::string suffix;        // Literal text appended after the expansion.
  bool canonicalized = false;  // Passed through realpath.
};

struct State {
  int id = 0;

  // Variable store. Missing name = unset. `maybe_unset` marks names whose
  // set-ness is environment-dependent (positional parameters, inherited env).
  std::map<std::string, SymValue> vars;
  std::set<std::string> maybe_unset;

  SymValue cwd = SymValue::Concrete("/");
  ExitStatus exit;
  symfs::SymbolicFs sfs;

  // Captured standard output (one entry per written line), consumed by
  // command substitution.
  std::vector<SymValue> stdout_lines;
  // Provenance of the last stdout line, when a value-model command (echo of a
  // variable, realpath) produced it — lets `test` refine through
  // substitutions like $(realpath "$STEAMROOT/").
  std::optional<Provenance> stdout_prov;

  // Human-readable path condition, e.g. "assumed `cd` failed".
  std::vector<std::string> assumptions;

  bool terminated = false;  // `exit` was executed.

  // True when this path assumed some command failed (a forked failure branch
  // or a spec case with nonzero exit). Used by the idempotence criterion to
  // condition on "the first run succeeded".
  bool assumed_failure = false;

  // Visible function definitions (AST owned by the analyzed Program).
  std::map<std::string, const syntax::Command*> functions;

  // ----- variable helpers -----
  bool IsSet(const std::string& name) const { return vars.count(name) > 0; }
  bool MaybeUnset(const std::string& name) const { return maybe_unset.count(name) > 0; }

  const SymValue* Lookup(const std::string& name) const {
    auto it = vars.find(name);
    return it == vars.end() ? nullptr : &it->second;
  }

  void Bind(const std::string& name, SymValue value) {
    vars[name] = std::move(value);
    maybe_unset.erase(name);
  }

  void BindMaybeUnset(const std::string& name, SymValue value) {
    vars[name] = std::move(value);
    maybe_unset.insert(name);
  }

  void Unset(const std::string& name) {
    vars.erase(name);
    maybe_unset.erase(name);
  }

  void Assume(std::string note) { assumptions.push_back(std::move(note)); }

  // Joined stdout as a single value ("" when no output) with trailing
  // newline stripped — command-substitution semantics.
  SymValue JoinedStdout() const;
};

}  // namespace sash::symex

#endif  // SASH_SYMEX_STATE_H_
