// Execution state for the symbolic engine: variable store, working directory,
// exit status, symbolic file system, accumulated stdout, and the path
// condition (as human-readable assumptions used in witness notes).
//
// The variable store is keyed by interned symbols and every mutation keeps a
// running 64-bit digest in sync, so `State::Digest()` — the key the merge
// loop compares — costs a handful of integer mixes instead of rendering the
// whole state to a string. Digests hash content (names, values, facts),
// never intern ids, so they are stable across runs and thread schedules.
#ifndef SASH_SYMEX_STATE_H_
#define SASH_SYMEX_STATE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "symex/value.h"
#include "symfs/symbolic_fs.h"
#include "syntax/ast.h"
#include "util/hash.h"
#include "util/intern.h"

namespace sash::symex {

// Abstract exit status: a known code or "some code, 0 or nonzero unknown".
struct ExitStatus {
  bool known = true;
  int code = 0;

  static ExitStatus Known(int c) { return ExitStatus{true, c}; }
  static ExitStatus Unknown() { return ExitStatus{false, 0}; }

  bool MustSucceed() const { return known && code == 0; }
  bool MustFail() const { return known && code != 0; }
  bool CanSucceed() const { return !known || code == 0; }
  bool CanFail() const { return !known || code != 0; }
};

// How a value was computed from a variable — enough structure to push test
// refinements back onto the variable (the paper's context-sensitivity: "it
// concludes safety ... by tracking constraints on variable contents,
// including those from conditionals").
struct Provenance {
  std::string var;           // The source variable.
  std::string suffix;        // Literal text appended after the expansion.
  bool canonicalized = false;  // Passed through realpath.
};

struct State {
  using VarMap = std::map<util::Symbol, SymValue>;

  int id = 0;

  SymValue cwd = SymValue::Concrete("/");
  ExitStatus exit;
  symfs::SymbolicFs sfs;

  // Captured standard output (one entry per written line), consumed by
  // command substitution.
  std::vector<SymValue> stdout_lines;
  // Provenance of the last stdout line, when a value-model command (echo of a
  // variable, realpath) produced it — lets `test` refine through
  // substitutions like $(realpath "$STEAMROOT/").
  std::optional<Provenance> stdout_prov;

  // Human-readable path condition, e.g. "assumed `cd` failed".
  std::vector<std::string> assumptions;

  bool terminated = false;  // `exit` was executed.

  // True when this path assumed some command failed (a forked failure branch
  // or a spec case with nonzero exit). Used by the idempotence criterion to
  // condition on "the first run succeeded".
  bool assumed_failure = false;

  // Visible function definitions (AST owned by the analyzed Program).
  std::map<util::Symbol, const syntax::Command*> functions;

  // ----- variable helpers -----
  // The store is private so every mutation maintains `vars_digest_`; all
  // writes go through Bind/BindMaybeUnset/Unset/RestoreScopeFrom. String
  // overloads intern (the population is bounded by script text).

  bool IsSet(util::Symbol name) const { return vars_.count(name) > 0; }
  bool IsSet(const std::string& name) const {
    auto sym = util::Symbol::Find(name);
    return sym.has_value() && IsSet(*sym);
  }

  bool MaybeUnset(util::Symbol name) const { return maybe_unset_.count(name) > 0; }
  bool MaybeUnset(const std::string& name) const {
    auto sym = util::Symbol::Find(name);
    return sym.has_value() && MaybeUnset(*sym);
  }

  const SymValue* Lookup(util::Symbol name) const {
    auto it = vars_.find(name);
    return it == vars_.end() ? nullptr : &it->second;
  }
  const SymValue* Lookup(const std::string& name) const {
    // Non-inserting: a name that was never interned was never bound.
    auto sym = util::Symbol::Find(name);
    return sym.has_value() ? Lookup(*sym) : nullptr;
  }

  void Bind(util::Symbol name, SymValue value) {
    RemoveBindingDigest(name);
    maybe_unset_.erase(name);
    SymValue& slot = vars_[name];
    slot = std::move(value);
    vars_digest_.Add(BindingHash(name, slot, /*maybe_unset=*/false));
  }
  void Bind(const std::string& name, SymValue value) {
    Bind(util::Symbol::Intern(name), std::move(value));
  }

  void BindMaybeUnset(util::Symbol name, SymValue value) {
    RemoveBindingDigest(name);
    maybe_unset_.insert(name);
    SymValue& slot = vars_[name];
    slot = std::move(value);
    vars_digest_.Add(BindingHash(name, slot, /*maybe_unset=*/true));
  }
  void BindMaybeUnset(const std::string& name, SymValue value) {
    BindMaybeUnset(util::Symbol::Intern(name), std::move(value));
  }

  void Unset(util::Symbol name) {
    RemoveBindingDigest(name);
    vars_.erase(name);
    maybe_unset_.erase(name);
  }
  void Unset(const std::string& name) {
    auto sym = util::Symbol::Find(name);
    if (sym.has_value()) {
      Unset(*sym);
    }
  }

  const VarMap& vars() const { return vars_; }
  const std::set<util::Symbol>& maybe_unset() const { return maybe_unset_; }

  // Subshell semantics: adopt the parent's variable/function scope (the
  // subshell result keeps its own exit/stdout/sfs).
  void RestoreScopeFrom(const State& parent) {
    vars_ = parent.vars_;
    maybe_unset_ = parent.maybe_unset_;
    vars_digest_ = parent.vars_digest_;
    functions = parent.functions;
  }

  void Assume(std::string note) { assumptions.push_back(std::move(note)); }

  // Joined stdout as a single value ("" when no output) with trailing
  // newline stripped — command-substitution semantics.
  SymValue JoinedStdout() const;

  // 64-bit digest of everything the legacy merge signature compared:
  // terminated, exit, cwd, variable bindings (with their maybe-unset marks),
  // filesystem facts, and the stdout line sequence. Excludes — exactly as
  // the string signature did — id, assumptions, assumed_failure, functions,
  // and stdout provenance. The variable component is maintained
  // incrementally; the rest are cached per part, so a call is O(stdout).
  uint64_t Digest() const;

 private:
  static uint64_t BindingHash(util::Symbol name, const SymValue& value,
                              bool maybe_unset) {
    uint64_t h = util::FnvMix64(0x7661723a00000000ull, name.hash());  // "var:"
    h = util::FnvMix64(h, value.Digest());
    return util::FnvMix64(h, maybe_unset ? 2 : 1);
  }

  void RemoveBindingDigest(util::Symbol name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) {
      vars_digest_.Remove(
          BindingHash(name, it->second, maybe_unset_.count(name) > 0));
    }
  }

  // Variable store. Missing name = unset. `maybe_unset_` marks names whose
  // set-ness is environment-dependent (positional parameters, inherited env).
  VarMap vars_;
  std::set<util::Symbol> maybe_unset_;
  util::CommutativeDigest vars_digest_;
};

}  // namespace sash::symex

#endif  // SASH_SYMEX_STATE_H_
