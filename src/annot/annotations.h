// Ergonomic annotations (§4): constraints join the shell ecosystem through
// specialized inline comments or external files, keeping full compatibility
// with existing interpreters. Syntax (one directive per line):
//
//   #@ sash: type hex = /[0-9a-f]+/          — define a named line type
//   #@ sash: type ident = word               — alias a library type
//   #@ sash: command mytool :: any -> hex    — declare a command's type
//   #@ sash: var STEAMROOT : abspath         — constrain a variable's contents
//
// External annotation files (*.sasht) use the same directives without the
// "#@ sash:" prefix.
#ifndef SASH_ANNOT_ANNOTATIONS_H_
#define SASH_ANNOT_ANNOTATIONS_H_

#include <string>
#include <vector>

#include "rtypes/types.h"
#include "util/diagnostics.h"

namespace sash::annot {

inline constexpr char kCodeBadAnnotation[] = "SASH-ANNOT";

struct TypeDef {
  std::string name;
  std::string spelling;  // Library name or /pattern/.
};

struct CommandTypeDecl {
  std::string command;
  std::string input_spelling;
  std::string output_spelling;
};

struct VarConstraint {
  std::string var;
  std::string spelling;
};

struct AnnotationSet {
  std::vector<TypeDef> types;
  std::vector<CommandTypeDecl> commands;
  std::vector<VarConstraint> vars;

  bool empty() const { return types.empty() && commands.empty() && vars.empty(); }

  // Resolves the directives against (and into) a type library. Type
  // definitions are registered; resolved command/var languages are returned.
  // Malformed spellings are reported to `sink` (when non-null) and skipped.
  struct Resolved {
    std::vector<std::pair<std::string, rtypes::CommandType>> command_types;
    std::vector<std::pair<std::string, regex::Regex>> var_langs;
  };
  Resolved ResolveInto(rtypes::TypeLibrary* lib, DiagnosticSink* sink) const;
};

// Extracts "#@ sash:" directives from shell source comments.
AnnotationSet ParseInlineAnnotations(std::string_view source, DiagnosticSink* sink = nullptr);

// Parses an external annotation file (directives without the prefix;
// '#' starts a comment).
AnnotationSet ParseAnnotationFile(std::string_view text, DiagnosticSink* sink = nullptr);

}  // namespace sash::annot

#endif  // SASH_ANNOT_ANNOTATIONS_H_
