#include "annot/annotations.h"

#include "util/strings.h"

namespace sash::annot {

namespace {

void ReportBad(DiagnosticSink* sink, int line, const std::string& message) {
  if (sink != nullptr) {
    SourcePos pos{0, line, 1};
    sink->Emit(Severity::kWarning, kCodeBadAnnotation, SourceRange{pos, pos}, message);
  }
}

// Parses one directive body ("type hex = /…/", "command c :: a -> b",
// "var X : t"). Returns false on malformed input.
bool ParseDirective(std::string_view body, AnnotationSet* out) {
  body = Trim(body);
  if (StartsWith(body, "type ")) {
    body.remove_prefix(5);
    size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      return false;
    }
    TypeDef def;
    def.name = std::string(Trim(body.substr(0, eq)));
    def.spelling = std::string(Trim(body.substr(eq + 1)));
    if (def.name.empty() || def.spelling.empty()) {
      return false;
    }
    out->types.push_back(std::move(def));
    return true;
  }
  if (StartsWith(body, "command ")) {
    body.remove_prefix(8);
    size_t sig = body.find("::");
    if (sig == std::string_view::npos) {
      return false;
    }
    CommandTypeDecl decl;
    decl.command = std::string(Trim(body.substr(0, sig)));
    std::string_view rest = Trim(body.substr(sig + 2));
    size_t arrow = rest.find("->");
    if (arrow == std::string_view::npos) {
      return false;
    }
    decl.input_spelling = std::string(Trim(rest.substr(0, arrow)));
    decl.output_spelling = std::string(Trim(rest.substr(arrow + 2)));
    if (decl.command.empty() || decl.input_spelling.empty() || decl.output_spelling.empty()) {
      return false;
    }
    out->commands.push_back(std::move(decl));
    return true;
  }
  if (StartsWith(body, "var ")) {
    body.remove_prefix(4);
    size_t colon = body.find(':');
    if (colon == std::string_view::npos) {
      return false;
    }
    VarConstraint vc;
    vc.var = std::string(Trim(body.substr(0, colon)));
    vc.spelling = std::string(Trim(body.substr(colon + 1)));
    if (vc.var.empty() || vc.spelling.empty()) {
      return false;
    }
    out->vars.push_back(std::move(vc));
    return true;
  }
  return false;
}

}  // namespace

AnnotationSet ParseInlineAnnotations(std::string_view source, DiagnosticSink* sink) {
  AnnotationSet out;
  int lineno = 0;
  for (const std::string& line : SplitLines(source)) {
    ++lineno;
    size_t marker = line.find("#@");
    if (marker == std::string::npos) {
      continue;
    }
    std::string_view body = Trim(std::string_view(line).substr(marker + 2));
    if (!StartsWith(body, "sash:")) {
      continue;
    }
    body.remove_prefix(5);
    if (!ParseDirective(body, &out)) {
      ReportBad(sink, lineno, "malformed annotation: " + std::string(Trim(body)));
    }
  }
  return out;
}

AnnotationSet ParseAnnotationFile(std::string_view text, DiagnosticSink* sink) {
  AnnotationSet out;
  int lineno = 0;
  for (const std::string& line : SplitLines(text)) {
    ++lineno;
    std::string_view body = Trim(line);
    if (body.empty() || body.front() == '#') {
      continue;
    }
    if (!ParseDirective(body, &out)) {
      ReportBad(sink, lineno, "malformed annotation: " + std::string(body));
    }
  }
  return out;
}

AnnotationSet::Resolved AnnotationSet::ResolveInto(rtypes::TypeLibrary* lib,
                                                   DiagnosticSink* sink) const {
  Resolved resolved;
  for (const TypeDef& def : types) {
    std::optional<regex::Regex> lang = lib->Resolve(def.spelling);
    if (!lang.has_value()) {
      ReportBad(sink, 0, "type '" + def.name + "': unresolvable spelling " + def.spelling);
      continue;
    }
    lib->Define(def.name, std::move(*lang));
  }
  for (const CommandTypeDecl& decl : commands) {
    std::optional<regex::Regex> in = lib->Resolve(decl.input_spelling);
    std::optional<regex::Regex> out_lang = lib->Resolve(decl.output_spelling);
    if (!in.has_value() || !out_lang.has_value()) {
      ReportBad(sink, 0, "command '" + decl.command + "': unresolvable type");
      continue;
    }
    rtypes::CommandType t;
    t.input = rtypes::TypeExpr::Lang(std::move(*in));
    t.output = rtypes::TypeExpr::Lang(std::move(*out_lang));
    resolved.command_types.emplace_back(decl.command, std::move(t));
  }
  for (const VarConstraint& vc : vars) {
    std::optional<regex::Regex> lang = lib->Resolve(vc.spelling);
    if (!lang.has_value()) {
      ReportBad(sink, 0, "var '" + vc.var + "': unresolvable type " + vc.spelling);
      continue;
    }
    resolved.var_langs.emplace_back(vc.var, std::move(*lang));
  }
  return resolved;
}

}  // namespace sash::annot
