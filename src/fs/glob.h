// Shell glob matching (fnmatch semantics over one path component) plus
// pathname expansion against a FileSystem. Used by the runtime monitor to
// execute `rm -fr "$STEAMROOT"/*` faithfully, and by case-pattern matching.
#ifndef SASH_FS_GLOB_H_
#define SASH_FS_GLOB_H_

#include <string>
#include <string_view>
#include <vector>

namespace sash::fs {

class FileSystem;

// fnmatch-style match of a single pattern against a single string:
// '*' any run (not crossing '/' when `pathname` matching is done by caller
// per-component), '?' one char, '[...]' classes with ranges and '!'/'^'
// negation, '\' escapes. Whole-string semantics.
bool GlobMatch(std::string_view pattern, std::string_view text);

// True when the pattern contains an unescaped glob metacharacter.
bool HasGlobChars(std::string_view pattern);

// Expands `pattern` (absolute or cwd-relative) against the file system.
// Follows shell rules: per-component matching, a pattern with no matches
// expands to itself (POSIX default, the behavior that makes `rm -rf $d/*`
// dangerous), dotfiles require an explicit leading dot.
std::vector<std::string> ExpandGlob(const FileSystem& fs, std::string_view pattern,
                                    std::string_view cwd);

}  // namespace sash::fs

#endif  // SASH_FS_GLOB_H_
