// An in-memory POSIX-style file system with interposition tracing.
//
// This is the execution substrate that replaces the paper's "instantiate
// concrete environments ... with appropriate interposition to record all of
// its interactions" (§3, Fig. 4): the spec miner probes command models against
// FileSystem instances and reads back the trace; the runtime monitor executes
// guarded pipelines against it.
//
// Model: files, directories, and symbolic links; no permissions, owners, or
// timestamps (none of the analyses reason about them); no hard links.
#ifndef SASH_FS_FILESYSTEM_H_
#define SASH_FS_FILESYSTEM_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sash::fs {

enum class NodeType { kFile, kDir, kSymlink };

enum class TraceOp {
  kStat,
  kRead,
  kWrite,
  kCreate,
  kUnlink,
  kRmdir,
  kMkdir,
  kSymlink,
  kRename,
  kReadDir,
  kChdir,
};

std::string_view TraceOpName(TraceOp op);

// One recorded interaction. `path` is the (absolutized) argument path.
struct TraceEvent {
  TraceOp op;
  std::string path;
  bool ok = true;
};

class FileSystem {
 public:
  FileSystem();

  // ----- working directory -----
  const std::string& cwd() const { return cwd_; }
  Status ChangeDir(std::string_view path);

  // ----- queries -----
  bool Exists(std::string_view path) const;
  bool IsFile(std::string_view path) const;
  bool IsDir(std::string_view path) const;
  bool IsSymlink(std::string_view path) const;  // The link itself (lstat).
  Result<std::string> ReadFile(std::string_view path) const;
  Result<std::vector<std::string>> ListDir(std::string_view path) const;  // Sorted names.
  Result<std::string> ReadLink(std::string_view path) const;

  // Canonical absolute path with every symlink resolved (realpath(3)).
  Result<std::string> RealPath(std::string_view path) const;

  // ----- mutations -----
  Status MakeDir(std::string_view path, bool parents = false);
  Status WriteFile(std::string_view path, std::string_view content, bool append = false);
  Status Touch(std::string_view path);  // Create empty file if absent.
  Status CreateSymlink(std::string_view target, std::string_view linkpath);
  // rm semantics: refuses directories unless `recursive`; with `force`,
  // a missing target is not an error.
  Status Remove(std::string_view path, bool recursive, bool force);
  Status RemoveEmptyDir(std::string_view path);  // rmdir.
  Status Rename(std::string_view from, std::string_view to);
  Status CopyFile(std::string_view from, std::string_view to);

  // ----- snapshot / diff (for effect compilation and tests) -----
  struct Entry {
    NodeType type = NodeType::kFile;
    std::string content;  // Files.
    std::string target;   // Symlinks.
    bool operator==(const Entry&) const = default;
  };
  using Snapshot = std::map<std::string, Entry>;  // Canonical path -> entry.
  Snapshot TakeSnapshot() const;
  // Human-readable change list: "+ /a (file)", "- /b", "~ /c".
  static std::vector<std::string> DiffSnapshots(const Snapshot& before, const Snapshot& after);

  // ----- interposition trace -----
  const std::vector<TraceEvent>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

  size_t LiveNodeCount() const;

 private:
  struct Inode {
    NodeType type = NodeType::kFile;
    std::string content;                  // kFile.
    std::map<std::string, int> entries;   // kDir: name -> inode id.
    std::string target;                   // kSymlink.
  };

  // Resolves to an inode id. `follow_last`: follow a trailing symlink.
  Result<int> ResolveToInode(std::string_view path, bool follow_last) const;
  // Resolution core: walks components, follows symlinks (incl. relative ".."
  // targets), optionally reporting the canonical path.
  Result<int> Walk(std::string_view path, bool follow_last, std::string* canonical_out) const;
  // Resolves the parent directory (following symlinks) and the final name.
  struct ParentRef {
    int dir = -1;
    std::string leaf;
  };
  Result<ParentRef> ResolveParent(std::string_view path) const;

  void Record(TraceOp op, std::string_view path, bool ok) const;
  void SnapshotWalk(int inode, const std::string& path, Snapshot* out) const;
  void RemoveTree(int inode);

  std::vector<Inode> inodes_;  // Index 0 is the root directory.
  std::string cwd_ = "/";
  mutable std::vector<TraceEvent> trace_;
};

}  // namespace sash::fs

#endif  // SASH_FS_FILESYSTEM_H_
