#include "fs/glob.h"

#include "fs/filesystem.h"
#include "fs/path.h"

namespace sash::fs {

namespace {

// Matches a bracket class starting at pattern[pi] (pattern[pi] == '[').
// On success sets *next_pi past the class and returns whether `c` matched.
// Returns false via *valid when the class is unterminated.
bool MatchClass(std::string_view pattern, size_t pi, char c, size_t* next_pi, bool* valid) {
  size_t i = pi + 1;
  bool negate = false;
  if (i < pattern.size() && (pattern[i] == '!' || pattern[i] == '^')) {
    negate = true;
    ++i;
  }
  bool matched = false;
  bool first = true;
  while (i < pattern.size()) {
    if (pattern[i] == ']' && !first) {
      *next_pi = i + 1;
      *valid = true;
      return matched != negate;
    }
    first = false;
    char lo = pattern[i];
    if (lo == '\\' && i + 1 < pattern.size()) {
      lo = pattern[++i];
    }
    if (i + 2 < pattern.size() && pattern[i + 1] == '-' && pattern[i + 2] != ']') {
      char hi = pattern[i + 2];
      if (c >= lo && c <= hi) {
        matched = true;
      }
      i += 3;
    } else {
      if (c == lo) {
        matched = true;
      }
      ++i;
    }
  }
  *valid = false;
  return false;
}

bool MatchFrom(std::string_view pattern, size_t pi, std::string_view text, size_t ti) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '*') {
      // Collapse consecutive stars, then try all suffixes.
      while (pi < pattern.size() && pattern[pi] == '*') {
        ++pi;
      }
      if (pi == pattern.size()) {
        return true;
      }
      for (size_t k = ti; k <= text.size(); ++k) {
        if (MatchFrom(pattern, pi, text, k)) {
          return true;
        }
      }
      return false;
    }
    if (ti >= text.size()) {
      return false;
    }
    if (pc == '?') {
      ++pi;
      ++ti;
      continue;
    }
    if (pc == '[') {
      size_t next_pi = 0;
      bool valid = false;
      bool matched = MatchClass(pattern, pi, text[ti], &next_pi, &valid);
      if (valid) {
        if (!matched) {
          return false;
        }
        pi = next_pi;
        ++ti;
        continue;
      }
      // Unterminated class: literal '['.
      if (text[ti] != '[') {
        return false;
      }
      ++pi;
      ++ti;
      continue;
    }
    if (pc == '\\' && pi + 1 < pattern.size()) {
      ++pi;
      pc = pattern[pi];
    }
    if (text[ti] != pc) {
      return false;
    }
    ++pi;
    ++ti;
  }
  return ti == text.size();
}

}  // namespace

bool GlobMatch(std::string_view pattern, std::string_view text) {
  return MatchFrom(pattern, 0, text, 0);
}

bool HasGlobChars(std::string_view pattern) {
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (c == '\\') {
      ++i;
      continue;
    }
    if (c == '*' || c == '?' || c == '[') {
      return true;
    }
  }
  return false;
}

std::vector<std::string> ExpandGlob(const FileSystem& fs, std::string_view pattern,
                                    std::string_view cwd) {
  if (!HasGlobChars(pattern)) {
    return {std::string(pattern)};
  }
  const bool absolute = IsAbsolute(pattern);
  std::vector<std::string> parts = SplitPath(pattern);
  // Track the user-visible spelling separately so relative patterns expand to
  // relative results, the way a real shell does.
  struct State {
    std::string real;     // Path used for FS lookups.
    std::string spelled;  // Path reported to the command.
  };
  std::vector<State> states{State{absolute ? "/" : std::string(cwd), absolute ? "/" : ""}};
  for (size_t level = 0; level < parts.size(); ++level) {
    const std::string& comp = parts[level];
    std::vector<State> next;
    for (const State& st : states) {
      if (!HasGlobChars(comp)) {
        std::string real = JoinPath(st.real, comp);
        bool is_last = level + 1 == parts.size();
        bool exists = is_last ? fs.Exists(real) : fs.IsDir(real);
        if (exists) {
          std::string spelled = st.spelled.empty()
                                    ? comp
                                    : (st.spelled == "/" ? "/" + comp : st.spelled + "/" + comp);
          next.push_back(State{std::move(real), std::move(spelled)});
        }
        continue;
      }
      Result<std::vector<std::string>> entries = fs.ListDir(st.real);
      if (!entries.ok()) {
        continue;
      }
      for (const std::string& name : *entries) {
        if (name.front() == '.' && comp.front() != '.') {
          continue;  // Dotfiles need an explicit leading dot.
        }
        if (GlobMatch(comp, name)) {
          std::string spelled = st.spelled.empty()
                                    ? name
                                    : (st.spelled == "/" ? "/" + name : st.spelled + "/" + name);
          next.push_back(State{JoinPath(st.real, name), std::move(spelled)});
        }
      }
    }
    states = std::move(next);
    if (states.empty()) {
      break;
    }
  }
  if (states.empty()) {
    // POSIX: a pattern with no matches is passed through literally — the
    // very behavior that turns `rm -rf "$d"/*` into `rm -rf /*`.
    return {std::string(pattern)};
  }
  std::vector<std::string> out;
  out.reserve(states.size());
  for (State& st : states) {
    out.push_back(std::move(st.spelled));
  }
  return out;
}

}  // namespace sash::fs
