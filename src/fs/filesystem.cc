#include "fs/filesystem.h"

#include <algorithm>

#include "fs/path.h"

namespace sash::fs {

namespace {
constexpr int kMaxSymlinkDepth = 40;
}  // namespace

std::string_view TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kStat:
      return "stat";
    case TraceOp::kRead:
      return "read";
    case TraceOp::kWrite:
      return "write";
    case TraceOp::kCreate:
      return "create";
    case TraceOp::kUnlink:
      return "unlink";
    case TraceOp::kRmdir:
      return "rmdir";
    case TraceOp::kMkdir:
      return "mkdir";
    case TraceOp::kSymlink:
      return "symlink";
    case TraceOp::kRename:
      return "rename";
    case TraceOp::kReadDir:
      return "readdir";
    case TraceOp::kChdir:
      return "chdir";
  }
  return "?";
}

FileSystem::FileSystem() {
  Inode root;
  root.type = NodeType::kDir;
  inodes_.push_back(std::move(root));
}

void FileSystem::Record(TraceOp op, std::string_view path, bool ok) const {
  trace_.push_back(TraceEvent{op, Absolutize(path, cwd_), ok});
}

Result<int> FileSystem::ResolveToInode(std::string_view path, bool follow_last) const {
  return Walk(path, follow_last, nullptr);
}

// Core resolution walk. Maintains a stack of inode ids (and their names) so
// that ".." introduced by relative symlink targets pops to the true parent of
// the *resolved* location, not the textual one — the realpath-vs-string
// distinction the paper's Fig. 2 reasoning relies on.
Result<int> FileSystem::Walk(std::string_view path, bool follow_last,
                             std::string* canonical_out) const {
  std::string abs = Absolutize(path, cwd_);
  std::vector<std::string> todo = SplitPath(abs);
  std::reverse(todo.begin(), todo.end());  // Pop from the back.
  std::vector<int> stack{0};               // Root.
  std::vector<std::string> names;          // Parallel to stack[1..].
  int depth = 0;
  while (!todo.empty()) {
    std::string name = std::move(todo.back());
    todo.pop_back();
    if (name == ".") {
      continue;
    }
    if (name == "..") {
      if (stack.size() > 1) {
        stack.pop_back();
        names.pop_back();
      }
      continue;
    }
    const Inode& node = inodes_[static_cast<size_t>(stack.back())];
    if (node.type != NodeType::kDir) {
      return Status::Error(Errc::kNotDir, abs + ": not a directory");
    }
    auto it = node.entries.find(name);
    if (it == node.entries.end()) {
      return Status::Error(Errc::kNoEnt, abs + ": no such file or directory");
    }
    int next = it->second;
    const Inode& next_node = inodes_[static_cast<size_t>(next)];
    bool is_last = todo.empty();
    if (next_node.type == NodeType::kSymlink && (!is_last || follow_last)) {
      if (++depth > kMaxSymlinkDepth) {
        return Status::Error(Errc::kLoop, abs + ": too many levels of symbolic links");
      }
      if (IsAbsolute(next_node.target)) {
        stack.assign(1, 0);
        names.clear();
      }
      std::vector<std::string> target_parts = SplitPath(next_node.target);
      for (auto rit = target_parts.rbegin(); rit != target_parts.rend(); ++rit) {
        todo.push_back(*rit);
      }
      continue;
    }
    stack.push_back(next);
    names.push_back(std::move(name));
  }
  if (canonical_out != nullptr) {
    std::string canonical = "/";
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) {
        canonical += '/';
      }
      canonical += names[i];
    }
    *canonical_out = std::move(canonical);
  }
  return stack.back();
}

Result<FileSystem::ParentRef> FileSystem::ResolveParent(std::string_view path) const {
  std::string abs = Absolutize(path, cwd_);
  if (abs == "/") {
    return Status::Error(Errc::kInval, "/: no parent");
  }
  std::string parent = DirName(abs);
  Result<int> dir = ResolveToInode(parent, /*follow_last=*/true);
  if (!dir.ok()) {
    return dir.status();
  }
  if (inodes_[static_cast<size_t>(*dir)].type != NodeType::kDir) {
    return Status::Error(Errc::kNotDir, parent + ": not a directory");
  }
  return ParentRef{*dir, BaseName(abs)};
}

Status FileSystem::ChangeDir(std::string_view path) {
  Result<int> node = ResolveToInode(path, /*follow_last=*/true);
  bool ok = node.ok() && inodes_[static_cast<size_t>(*node)].type == NodeType::kDir;
  Record(TraceOp::kChdir, path, ok);
  if (!node.ok()) {
    return node.status();
  }
  if (inodes_[static_cast<size_t>(*node)].type != NodeType::kDir) {
    return Status::Error(Errc::kNotDir, std::string(path) + ": not a directory");
  }
  // Canonicalize so cwd() is always a clean absolute path.
  Result<std::string> real = RealPath(path);
  cwd_ = real.ok() ? *real : Absolutize(path, cwd_);
  return Status::Ok();
}

bool FileSystem::Exists(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/true);
  Record(TraceOp::kStat, path, node.ok());
  return node.ok();
}

bool FileSystem::IsFile(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/true);
  Record(TraceOp::kStat, path, node.ok());
  return node.ok() && inodes_[static_cast<size_t>(*node)].type == NodeType::kFile;
}

bool FileSystem::IsDir(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/true);
  Record(TraceOp::kStat, path, node.ok());
  return node.ok() && inodes_[static_cast<size_t>(*node)].type == NodeType::kDir;
}

bool FileSystem::IsSymlink(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/false);
  Record(TraceOp::kStat, path, node.ok());
  return node.ok() && inodes_[static_cast<size_t>(*node)].type == NodeType::kSymlink;
}

Result<std::string> FileSystem::ReadFile(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/true);
  if (!node.ok()) {
    Record(TraceOp::kRead, path, false);
    return node.status();
  }
  const Inode& inode = inodes_[static_cast<size_t>(*node)];
  if (inode.type != NodeType::kFile) {
    Record(TraceOp::kRead, path, false);
    return Status::Error(Errc::kIsDir, std::string(path) + ": is a directory");
  }
  Record(TraceOp::kRead, path, true);
  return inode.content;
}

Result<std::vector<std::string>> FileSystem::ListDir(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/true);
  if (!node.ok()) {
    Record(TraceOp::kReadDir, path, false);
    return node.status();
  }
  const Inode& inode = inodes_[static_cast<size_t>(*node)];
  if (inode.type != NodeType::kDir) {
    Record(TraceOp::kReadDir, path, false);
    return Status::Error(Errc::kNotDir, std::string(path) + ": not a directory");
  }
  Record(TraceOp::kReadDir, path, true);
  std::vector<std::string> names;
  names.reserve(inode.entries.size());
  for (const auto& [name, id] : inode.entries) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted.
}

Result<std::string> FileSystem::ReadLink(std::string_view path) const {
  Result<int> node = ResolveToInode(path, /*follow_last=*/false);
  if (!node.ok()) {
    return node.status();
  }
  const Inode& inode = inodes_[static_cast<size_t>(*node)];
  if (inode.type != NodeType::kSymlink) {
    return Status::Error(Errc::kInval, std::string(path) + ": not a symlink");
  }
  return inode.target;
}

Result<std::string> FileSystem::RealPath(std::string_view path) const {
  std::string canonical;
  Result<int> node = Walk(path, /*follow_last=*/true, &canonical);
  if (!node.ok()) {
    return node.status();
  }
  return canonical;
}

Status FileSystem::MakeDir(std::string_view path, bool parents) {
  std::string abs = Absolutize(path, cwd_);
  if (parents) {
    std::vector<std::string> parts = SplitPath(abs);
    std::string prefix = "/";
    for (const std::string& part : parts) {
      prefix = JoinPath(prefix, part);
      Result<int> existing = ResolveToInode(prefix, /*follow_last=*/true);
      if (existing.ok()) {
        if (inodes_[static_cast<size_t>(*existing)].type != NodeType::kDir) {
          Record(TraceOp::kMkdir, prefix, false);
          return Status::Error(Errc::kExists, prefix + ": exists and is not a directory");
        }
        continue;
      }
      Status s = MakeDir(prefix, /*parents=*/false);
      if (!s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  }
  Result<ParentRef> parent = ResolveParent(abs);
  if (!parent.ok()) {
    Record(TraceOp::kMkdir, abs, false);
    return parent.status();
  }
  Inode& dir = inodes_[static_cast<size_t>(parent->dir)];
  if (dir.entries.count(parent->leaf) > 0) {
    Record(TraceOp::kMkdir, abs, false);
    return Status::Error(Errc::kExists, abs + ": file exists");
  }
  Inode node;
  node.type = NodeType::kDir;
  inodes_.push_back(std::move(node));
  inodes_[static_cast<size_t>(parent->dir)].entries[parent->leaf] =
      static_cast<int>(inodes_.size()) - 1;
  Record(TraceOp::kMkdir, abs, true);
  return Status::Ok();
}

Status FileSystem::WriteFile(std::string_view path, std::string_view content, bool append) {
  Result<int> existing = ResolveToInode(path, /*follow_last=*/true);
  if (existing.ok()) {
    Inode& inode = inodes_[static_cast<size_t>(*existing)];
    if (inode.type == NodeType::kDir) {
      Record(TraceOp::kWrite, path, false);
      return Status::Error(Errc::kIsDir, std::string(path) + ": is a directory");
    }
    if (append) {
      inode.content += content;
    } else {
      inode.content = std::string(content);
    }
    Record(TraceOp::kWrite, path, true);
    return Status::Ok();
  }
  Result<ParentRef> parent = ResolveParent(path);
  if (!parent.ok()) {
    Record(TraceOp::kCreate, path, false);
    return parent.status();
  }
  Inode node;
  node.type = NodeType::kFile;
  node.content = std::string(content);
  inodes_.push_back(std::move(node));
  inodes_[static_cast<size_t>(parent->dir)].entries[parent->leaf] =
      static_cast<int>(inodes_.size()) - 1;
  Record(TraceOp::kCreate, path, true);
  return Status::Ok();
}

Status FileSystem::Touch(std::string_view path) {
  if (Exists(path)) {
    return Status::Ok();
  }
  return WriteFile(path, "", /*append=*/false);
}

Status FileSystem::CreateSymlink(std::string_view target, std::string_view linkpath) {
  Result<ParentRef> parent = ResolveParent(linkpath);
  if (!parent.ok()) {
    Record(TraceOp::kSymlink, linkpath, false);
    return parent.status();
  }
  Inode& dir = inodes_[static_cast<size_t>(parent->dir)];
  if (dir.entries.count(parent->leaf) > 0) {
    Record(TraceOp::kSymlink, linkpath, false);
    return Status::Error(Errc::kExists, std::string(linkpath) + ": file exists");
  }
  Inode node;
  node.type = NodeType::kSymlink;
  node.target = std::string(target);
  inodes_.push_back(std::move(node));
  inodes_[static_cast<size_t>(parent->dir)].entries[parent->leaf] =
      static_cast<int>(inodes_.size()) - 1;
  Record(TraceOp::kSymlink, linkpath, true);
  return Status::Ok();
}

void FileSystem::RemoveTree(int inode_id) {
  Inode& inode = inodes_[static_cast<size_t>(inode_id)];
  if (inode.type == NodeType::kDir) {
    for (auto& [name, child] : inode.entries) {
      RemoveTree(child);
    }
    inode.entries.clear();
  }
}

Status FileSystem::Remove(std::string_view path, bool recursive, bool force) {
  Result<ParentRef> parent = ResolveParent(path);
  if (!parent.ok()) {
    if (force && (parent.code() == Errc::kNoEnt)) {
      return Status::Ok();
    }
    Record(TraceOp::kUnlink, path, false);
    return parent.status();
  }
  Inode& dir = inodes_[static_cast<size_t>(parent->dir)];
  auto it = dir.entries.find(parent->leaf);
  if (it == dir.entries.end()) {
    if (force) {
      return Status::Ok();
    }
    Record(TraceOp::kUnlink, path, false);
    return Status::Error(Errc::kNoEnt, std::string(path) + ": no such file or directory");
  }
  Inode& victim = inodes_[static_cast<size_t>(it->second)];
  if (victim.type == NodeType::kDir) {
    if (!recursive) {
      Record(TraceOp::kUnlink, path, false);
      return Status::Error(Errc::kIsDir, std::string(path) + ": is a directory");
    }
    RemoveTree(it->second);
    Record(TraceOp::kRmdir, path, true);
  } else {
    Record(TraceOp::kUnlink, path, true);
  }
  dir.entries.erase(it);
  return Status::Ok();
}

Status FileSystem::RemoveEmptyDir(std::string_view path) {
  Result<int> node = ResolveToInode(path, /*follow_last=*/false);
  if (!node.ok()) {
    Record(TraceOp::kRmdir, path, false);
    return node.status();
  }
  Inode& inode = inodes_[static_cast<size_t>(*node)];
  if (inode.type != NodeType::kDir) {
    Record(TraceOp::kRmdir, path, false);
    return Status::Error(Errc::kNotDir, std::string(path) + ": not a directory");
  }
  if (!inode.entries.empty()) {
    Record(TraceOp::kRmdir, path, false);
    return Status::Error(Errc::kNotEmpty, std::string(path) + ": directory not empty");
  }
  Result<ParentRef> parent = ResolveParent(path);
  if (!parent.ok()) {
    Record(TraceOp::kRmdir, path, false);
    return parent.status();
  }
  inodes_[static_cast<size_t>(parent->dir)].entries.erase(parent->leaf);
  Record(TraceOp::kRmdir, path, true);
  return Status::Ok();
}

Status FileSystem::Rename(std::string_view from, std::string_view to) {
  Result<ParentRef> src = ResolveParent(from);
  if (!src.ok()) {
    Record(TraceOp::kRename, from, false);
    return src.status();
  }
  auto src_it = inodes_[static_cast<size_t>(src->dir)].entries.find(src->leaf);
  if (src_it == inodes_[static_cast<size_t>(src->dir)].entries.end()) {
    Record(TraceOp::kRename, from, false);
    return Status::Error(Errc::kNoEnt, std::string(from) + ": no such file or directory");
  }
  int moved = src_it->second;
  // If `to` is an existing directory, move into it (mv semantics).
  std::string dest(to);
  Result<int> to_node = ResolveToInode(to, /*follow_last=*/true);
  if (to_node.ok() && inodes_[static_cast<size_t>(*to_node)].type == NodeType::kDir) {
    dest = JoinPath(Absolutize(to, cwd_), BaseName(from));
  }
  Result<ParentRef> dst = ResolveParent(dest);
  if (!dst.ok()) {
    Record(TraceOp::kRename, dest, false);
    return dst.status();
  }
  inodes_[static_cast<size_t>(src->dir)].entries.erase(src->leaf);
  inodes_[static_cast<size_t>(dst->dir)].entries[dst->leaf] = moved;
  Record(TraceOp::kRename, dest, true);
  return Status::Ok();
}

Status FileSystem::CopyFile(std::string_view from, std::string_view to) {
  Result<std::string> content = ReadFile(from);
  if (!content.ok()) {
    return content.status();
  }
  // cp into a directory target keeps the source basename.
  std::string dest(to);
  Result<int> to_node = ResolveToInode(to, /*follow_last=*/true);
  if (to_node.ok() && inodes_[static_cast<size_t>(*to_node)].type == NodeType::kDir) {
    dest = JoinPath(Absolutize(to, cwd_), BaseName(from));
  }
  return WriteFile(dest, *content, /*append=*/false);
}

void FileSystem::SnapshotWalk(int inode_id, const std::string& path, Snapshot* out) const {
  const Inode& inode = inodes_[static_cast<size_t>(inode_id)];
  Entry entry;
  switch (inode.type) {
    case NodeType::kFile:
      entry.type = NodeType::kFile;
      entry.content = inode.content;
      break;
    case NodeType::kDir:
      entry.type = NodeType::kDir;
      break;
    case NodeType::kSymlink:
      entry.type = NodeType::kSymlink;
      entry.target = inode.target;
      break;
  }
  if (path != "/") {
    (*out)[path] = std::move(entry);
  }
  if (inode.type == NodeType::kDir) {
    for (const auto& [name, child] : inode.entries) {
      SnapshotWalk(child, JoinPath(path, name), out);
    }
  }
}

FileSystem::Snapshot FileSystem::TakeSnapshot() const {
  Snapshot out;
  SnapshotWalk(0, "/", &out);
  return out;
}

std::vector<std::string> FileSystem::DiffSnapshots(const Snapshot& before, const Snapshot& after) {
  std::vector<std::string> out;
  for (const auto& [path, entry] : before) {
    auto it = after.find(path);
    if (it == after.end()) {
      out.push_back("- " + path);
    } else if (!(it->second == entry)) {
      out.push_back("~ " + path);
    }
  }
  for (const auto& [path, entry] : after) {
    if (before.find(path) == before.end()) {
      std::string kind = entry.type == NodeType::kDir    ? "dir"
                         : entry.type == NodeType::kFile ? "file"
                                                         : "symlink";
      out.push_back("+ " + path + " (" + kind + ")");
    }
  }
  return out;
}

size_t FileSystem::LiveNodeCount() const {
  // Count reachable inodes from the root.
  size_t count = 0;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    ++count;
    const Inode& inode = inodes_[static_cast<size_t>(id)];
    if (inode.type == NodeType::kDir) {
      for (const auto& [name, child] : inode.entries) {
        stack.push_back(child);
      }
    }
  }
  return count;
}

}  // namespace sash::fs
