// Lexical path algebra: splitting, joining, normalization. Purely textual —
// symlink-aware resolution lives in FileSystem::Resolve (and, symbolically, in
// sash::symfs). The distinction matters: the paper's Fig. 2 hinges on the gap
// between a path *string* and the file system *node* it resolves to.
#ifndef SASH_FS_PATH_H_
#define SASH_FS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace sash::fs {

bool IsAbsolute(std::string_view path);

// Components of a path, ignoring empty segments: "/a//b/" -> {"a","b"}.
std::vector<std::string> SplitPath(std::string_view path);

// Joins with exactly one separator: ("/a","b") -> "/a/b"; absolute `b` wins.
std::string JoinPath(std::string_view base, std::string_view rel);

// Lexically normalizes: collapses "//" and "/./", resolves ".." against the
// textual parent ("/a/b/.." -> "/a"; ".." at root stays at root). Does NOT
// consult the file system, so "dir/.." where dir is a symlink is wrong by
// design — that is what realpath-style resolution is for.
std::string NormalizePath(std::string_view path);

// The textual parent: "/a/b" -> "/a", "/a" -> "/", "a" -> ".".
std::string DirName(std::string_view path);

// The final component: "/a/b" -> "b", "/" -> "/".
std::string BaseName(std::string_view path);

// Resolves `path` against `cwd` when relative, then normalizes.
std::string Absolutize(std::string_view path, std::string_view cwd);

}  // namespace sash::fs

#endif  // SASH_FS_PATH_H_
