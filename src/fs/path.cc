#include "fs/path.h"

#include "util/strings.h"

namespace sash::fs {

bool IsAbsolute(std::string_view path) { return !path.empty() && path.front() == '/'; }

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      parts.emplace_back(path.substr(start, i - start));
    }
  }
  return parts;
}

std::string JoinPath(std::string_view base, std::string_view rel) {
  if (IsAbsolute(rel) || base.empty()) {
    return std::string(rel);
  }
  if (rel.empty()) {
    return std::string(base);
  }
  std::string out(base);
  if (out.back() != '/') {
    out += '/';
  }
  out += rel;
  return out;
}

std::string NormalizePath(std::string_view path) {
  const bool absolute = IsAbsolute(path);
  std::vector<std::string> stack;
  for (std::string& part : SplitPath(path)) {
    if (part == ".") {
      continue;
    }
    if (part == "..") {
      if (!stack.empty() && stack.back() != "..") {
        stack.pop_back();
      } else if (!absolute) {
        stack.push_back("..");  // Relative paths keep leading "..".
      }
      continue;
    }
    stack.push_back(std::move(part));
  }
  std::string joined = Join(stack, "/");
  std::string out = absolute ? "/" + joined : joined;
  if (out.empty()) {
    out = ".";
  }
  return out;
}

std::string DirName(std::string_view path) {
  std::string norm = NormalizePath(path);
  size_t pos = norm.rfind('/');
  if (pos == std::string::npos) {
    return ".";
  }
  if (pos == 0) {
    return "/";
  }
  return norm.substr(0, pos);
}

std::string BaseName(std::string_view path) {
  std::string norm = NormalizePath(path);
  if (norm == "/") {
    return "/";
  }
  size_t pos = norm.rfind('/');
  if (pos == std::string::npos) {
    return norm;
  }
  return norm.substr(pos + 1);
}

std::string Absolutize(std::string_view path, std::string_view cwd) {
  if (IsAbsolute(path)) {
    return NormalizePath(path);
  }
  return NormalizePath(JoinPath(cwd, path));
}

}  // namespace sash::fs
