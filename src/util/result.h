// Minimal Status/Result types (C++20 has no std::expected). Errors carry a
// POSIX-flavored code plus a message, because command models map them onto
// exit codes and stderr text.
#ifndef SASH_UTIL_RESULT_H_
#define SASH_UTIL_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sash {

enum class Errc {
  kOk,
  kNoEnt,     // No such file or directory.
  kNotDir,    // A path component is not a directory.
  kIsDir,     // Target is a directory.
  kExists,    // Target already exists.
  kNotEmpty,  // Directory not empty.
  kLoop,      // Too many symlink levels.
  kInval,     // Invalid argument.
  kPerm,      // Operation not permitted.
};

std::string_view ErrcName(Errc code);

class Status {
 public:
  Status() = default;
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Error(Errc code, std::string message) { return Status(code, std::move(message)); }

  bool ok() const { return code_ == Errc::kOk; }
  Errc code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(ErrcName(code_)) + ": " + message_;
  }

 private:
  Errc code_ = Errc::kOk;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT: implicit by design.

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }
  Errc code() const { return status_.code(); }

  const T& value() const {
    CheckOk();
    return *value_;
  }
  T& value() {
    CheckOk();
    return *value_;
  }
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  // Dereferencing a failed Result is a programming error; fail fast with the
  // carried status instead of undefined behavior.
  void CheckOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "FATAL: accessed value of failed Result: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace sash

#endif  // SASH_UTIL_RESULT_H_
