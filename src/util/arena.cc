#include "util/arena.h"

namespace sash::util {

void Arena::Grow(size_t min_size) {
  size_t size = next_block_size_;
  if (size < min_size) {
    size = min_size;
  }
  blocks_.emplace_back(new char[size]);
  cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
  limit_ = cursor_ + size;
  // Geometric growth, capped: big parses amortize, small ones stay small.
  if (next_block_size_ < kMaxBlockSize) {
    next_block_size_ *= 2;
  }
}

void Arena::DestroyAll() {
  // Reverse construction order, mirroring what nested unique_ptrs did.
  for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
    it->fn(it->obj);
  }
  dtors_.clear();
}

}  // namespace sash::util
