#include "util/diagnostics.h"

namespace sash {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = range.ToString();
  out += " ";
  out += SeverityName(severity);
  if (!code.empty()) {
    out += "[";
    out += code;
    out += "]";
  }
  out += ": ";
  out += message;
  for (const DiagnosticNote& note : notes) {
    out += "\n  note: ";
    out += note.message;
  }
  return out;
}

Diagnostic& DiagnosticSink::Emit(Severity severity, std::string code, SourceRange range,
                                 std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.range = range;
  d.message = std::move(message);
  if (counter_ != nullptr && severity >= counter_threshold_) {
    counter_->Add(1);
  }
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

size_t DiagnosticSink::CountAtLeast(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity >= severity) {
      ++n;
    }
  }
  return n;
}

}  // namespace sash
