// Diagnostics: the common currency every analysis stage (lint, symbolic
// execution, stream typing, monitoring) uses to report findings back to users.
//
// A Diagnostic carries a severity, a stable rule code (e.g. "SASH-DEL-ROOT"),
// a source range, a human-readable message, and optional notes such as the
// symbolic witness environment that triggers the bug.
#ifndef SASH_UTIL_DIAGNOSTICS_H_
#define SASH_UTIL_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/source_location.h"

namespace sash {

enum class Severity {
  kNote,     // Supplementary information attached to another finding.
  kInfo,     // Non-actionable observation (e.g. inferred type display).
  kWarning,  // Likely bug on some execution path.
  kError,    // Bug on all execution paths, or a parse failure.
};

std::string_view SeverityName(Severity s);

// A secondary message attached to a diagnostic, e.g. "witness: $0 = 'upd.sh'".
struct DiagnosticNote {
  SourceRange range;  // May be empty when the note is not anchored to code.
  std::string message;
};

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;     // Stable machine-readable rule id.
  SourceRange range;    // Primary source anchor.
  std::string message;  // Human-readable description.
  std::vector<DiagnosticNote> notes;

  // Renders "12:3 error[SASH-DEL-ROOT]: message" plus indented notes.
  std::string ToString() const;
};

// An append-only sink shared by analysis passes. Collects diagnostics in
// emission order; the analyzer sorts and dedups at report time.
class DiagnosticSink {
 public:
  Diagnostic& Emit(Severity severity, std::string code, SourceRange range, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic> TakeAll() { return std::move(diagnostics_); }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  // Count of diagnostics at a given severity or above.
  size_t CountAtLeast(Severity severity) const;

  // Optional metrics hook: every Emit at `threshold` or above also bumps
  // `counter`. Pass nullptr to detach.
  void CountInto(obs::Counter* counter, Severity threshold) {
    counter_ = counter;
    counter_threshold_ = threshold;
  }

  void Clear() { diagnostics_.clear(); }

 private:
  std::vector<Diagnostic> diagnostics_;
  obs::Counter* counter_ = nullptr;
  Severity counter_threshold_ = Severity::kWarning;
};

}  // namespace sash

#endif  // SASH_UTIL_DIAGNOSTICS_H_
