#include "util/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace sash {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

namespace {
bool IsSpaceChar(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
}  // namespace

std::string_view TrimLeft(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && IsSpaceChar(s[i])) {
    ++i;
  }
  return s.substr(i);
}

std::string_view TrimRight(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && IsSpaceChar(s[n - 1])) {
    --n;
  }
  return s.substr(0, n);
}

std::string_view Trim(std::string_view s) { return TrimRight(TrimLeft(s)); }

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string EscapeForDisplay(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '\\' || c == '\'') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20 || c == 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(s);
  }
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out += s.substr(start);
      break;
    }
    out += s.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  bool negative = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    negative = s.front() == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) {
    return false;
  }
  uint64_t magnitude = 0;
  // Largest representable magnitude: 2^63 for negative values, 2^63-1 else.
  const uint64_t limit =
      negative ? (1ULL << 63) : static_cast<uint64_t>(INT64_MAX);
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (limit - digit) / 10) {
      return false;  // Would overflow.
    }
    magnitude = magnitude * 10 + digit;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

}  // namespace sash
