// Deterministic fault-injection harness. Research analyzers die of
// unmaintained failure paths; this harness makes the failure paths testable
// by letting a seeded plan inject I/O errors, torn/truncated payloads, and
// slow tasks at named hook points (the batch cache's read/write/rename path,
// spec-corpus loading, the thread pool) without any real filesystem damage.
//
// A plan is a list of rules. Each rule names a site and decides, per
// occurrence and fully deterministically (splitmix64 over seed × site ×
// occurrence index), whether to fire and with which action:
//
//   cache.write#1=fail                 // fail the 1st cache write, only
//   cache.read~foo.sh=torn             // truncate reads whose detail has foo.sh
//   pool.task%50@3=delay               // delay 5% of pool tasks by 3ms
//   analyze.file#3=fail;cache.read%100=corrupt   // rules separated by ';'
//
// Rule grammar:  site[~match][#nth][%per_mille][@delay_ms][=action]
//   site:    cache.read | cache.write | cache.rename | spec.load |
//            pool.task | analyze.file | serve.accept | serve.read |
//            serve.write | serve.dispatch | client.connect
//   ~match:  substring that the hook's detail string (usually a path) must
//            contain; absent = any
//   #nth:    fire only on the nth matching occurrence (1-based); absent and
//            no %: fire on every matching occurrence
//   %n:      fire with probability n/1000 per occurrence (deterministic roll)
//   @ms:     delay milliseconds for the delay action (default 2)
//   action:  fail | torn | corrupt | delay | crash | enospc (default fail)
//
// Activation: tests call FaultInjector::Install(plan) / Uninstall(); outside
// of that, the environment is consulted once — SASH_FAULT_PLAN holds a plan
// string, or SASH_FAULT_SEED alone selects the built-in chaos plan (low-rate
// faults at every gracefully-degrading site). When neither is set the hooks
// compile down to one relaxed atomic load.
#ifndef SASH_UTIL_FAULTINJECT_H_
#define SASH_UTIL_FAULTINJECT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sash::util {

enum class FaultSite : uint8_t {
  kCacheRead = 0,
  kCacheWrite,
  kCacheRename,
  kSpecLoad,
  kPoolTask,
  kAnalyzeFile,
  // The resident server's request path (PR 7): every layer a torn client,
  // full disk, or scheduling hiccup can hit. fail on serve.accept drops one
  // incoming connection (clients retry), serve.read/serve.write poison one
  // connection (never the daemon), serve.dispatch fails one request with a
  // well-formed error response, client.connect simulates a refused/absent
  // socket for the client's backoff loop.
  kServeAccept,
  kServeRead,
  kServeWrite,
  kServeDispatch,
  kClientConnect,
};
inline constexpr int kNumFaultSites = 11;

std::string_view FaultSiteName(FaultSite site);

enum class FaultAction : uint8_t {
  kNone = 0,
  kFail,     // The hooked operation reports failure.
  kTorn,     // The payload is truncated mid-entry.
  kCorrupt,  // One payload byte is flipped.
  kDelay,    // The operation is delayed by delay_ms.
  kCrash,    // Inside a sandboxed worker (util::InWorker()): a real SIGSEGV,
             // exercising process-level crash containment. Outside a worker
             // the site degrades to kFail — an uncontained test process must
             // never be sacrificed by its own harness.
  kEnospc,   // cache.write only: the write fails as if the disk were full
             // (persistent, not transient), driving the cache's read-only
             // degradation instead of the retry loop.
};

struct FaultRule {
  FaultSite site = FaultSite::kCacheRead;
  std::string match;        // Substring of the hook detail; empty = any.
  int32_t nth = 0;          // 1-based occurrence to fire on; 0 = not occurrence-gated.
  int32_t per_mille = 0;    // Deterministic firing rate out of 1000; 0 with
                            // nth==0 means fire on every match.
  FaultAction action = FaultAction::kFail;
  int32_t delay_ms = 2;     // For kDelay.
  int32_t max_fires = 0;    // Stop firing after this many hits; 0 = unlimited.
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  // Parses the plan grammar above. Returns false and sets *error on
  // malformed input.
  static bool Parse(std::string_view text, FaultPlan* plan, std::string* error);

  // The built-in chaos plan used when only SASH_FAULT_SEED is set: low-rate
  // faults confined to sites the pipeline must absorb gracefully (cache I/O
  // demotes to miss/skip, pool delays are invisible, spec corruption demotes
  // to a mine-cache miss) — functional results stay byte-identical.
  static FaultPlan DefaultChaos(uint64_t seed);
};

// The outcome of consulting the injector at a hook point.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int32_t delay_ms = 0;
  uint64_t roll = 0;  // Deterministic per-occurrence value; salts payload faults.

  explicit operator bool() const { return action != FaultAction::kNone; }
};

// Process-global injector. Install/Uninstall are for tests and must not race
// with in-flight Check calls from other threads (install before starting the
// pool, uninstall after joining it); Check itself is thread-safe.
class FaultInjector {
 public:
  static void Install(const FaultPlan& plan);
  static void Uninstall();

  // True when a plan is active (including one picked up from the
  // environment). One relaxed atomic load when idle.
  static bool enabled() {
    int s = state_.load(std::memory_order_acquire);
    if (s == kUninitialized) {
      return InitFromEnv();
    }
    return s == kEnabled;
  }

  // Consults the active plan at `site` for an operation described by
  // `detail` (usually a path). Returns the action to apply, kNone when idle.
  static FaultDecision Check(FaultSite site, std::string_view detail);

  // Sleeps for a kDelay decision; no-op for other actions.
  static void ApplyDelay(const FaultDecision& decision);

  // Mutates `payload` for kTorn (truncates to a roll-dependent prefix) or
  // kCorrupt (flips one roll-dependent byte). No-op for other actions or an
  // empty payload.
  static void ApplyPayloadFault(const FaultDecision& decision, std::string* payload);

  // Total faults fired since the last Install (observability + tests).
  static int64_t fires();

 private:
  enum : int { kUninitialized = 0, kDisabled = 1, kEnabled = 2 };
  static bool InitFromEnv();
  static std::atomic<int> state_;
};

}  // namespace sash::util

#endif  // SASH_UTIL_FAULTINJECT_H_
