// A work-stealing thread pool for the batch analysis driver. Each worker owns
// a deque: it pushes and pops its own work at the back (LIFO, cache-warm) and
// steals from other workers at the front (FIFO, oldest first), so large tasks
// submitted early migrate to idle workers instead of serializing behind one
// queue. External submissions round-robin across workers.
//
//   sash::util::ThreadPool pool(8);
//   for (auto& file : files) pool.Submit([&] { Analyze(file); });
//   pool.Wait();                                // all submitted work done
//
// Submit is callable from pool threads too (a task submitted from a worker
// lands on that worker's own deque). Wait only returns when every task —
// including tasks submitted by tasks — has finished.
//
// With observability hooks attached the pool reports its own scheduling:
// worker deque and idle locks are ProfiledMutex sites ("pool.worker",
// "pool.idle"), each task start/stop, steal, and queue-depth change lands in
// the event journal, every task runs under a tracer span in its worker's
// named lane, and the "pool.queue_depth" gauge tracks backlog.
#ifndef SASH_UTIL_THREAD_POOL_H_
#define SASH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace sash::util {

class ThreadPool {
 public:
  // `threads` <= 0 selects the hardware concurrency (at least 1). `hooks`
  // members may each be null; a default Hooks disables all telemetry.
  explicit ThreadPool(int threads, obs::Hooks hooks = {});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed. Safe to call repeatedly;
  // new work may be submitted afterwards.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

  // Total tasks stolen across all workers (scheduler telemetry, for tests
  // and for the "batch.steals" counter).
  int64_t steals() const;

  // The calling thread's worker slot in the pool it belongs to, or -1 when
  // the caller is not a pool worker. Lets per-worker data structures (the
  // batch cache commit queue's lanes) pick a contention-free lane without
  // the pool having to thread an index through every task closure.
  static int CurrentWorkerIndex();

 private:
  // alignas: each worker's mutex + deque head live on their own cache line.
  // Workers are hammered from two sides (the owner popping, thieves
  // stealing); when two workers' hot fields share a line, every steal probe
  // bounces the line between cores and re-serializes what the per-worker
  // deques exist to keep apart.
  struct alignas(64) Worker {
    // All workers share one logical probe site; per-instance stats merge by
    // name in LockProbes::Snapshot().
    obs::ProfiledMutex mu{"pool.worker"};
    std::deque<std::function<void()>> deque;
    // Tasks this worker stole from others. Atomic so the thief records its
    // steal without re-taking its own deque lock on the steal path.
    std::atomic<int64_t> steals{0};
  };

  void WorkerLoop(int index);
  bool TryPopOwn(int index, std::function<void()>* task);
  bool TrySteal(int thief, std::function<void()>* task);
  void RunTask(int index, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  obs::Hooks hooks_;
  obs::Gauge* queue_gauge_ = nullptr;  // Hoisted "pool.queue_depth" handle.

  obs::ProfiledMutex idle_mu_{"pool.idle"};
  // _any variants because idle_mu_ is a ProfiledMutex, not a std::mutex.
  std::condition_variable_any work_cv_;  // Signaled on submit and shutdown.
  std::condition_variable_any done_cv_;  // Signaled when pending reaches zero.
  int64_t pending_ = 0;              // Submitted but not yet finished.
  int64_t queued_ = 0;               // Submitted but not yet picked up.
  bool shutdown_ = false;
  unsigned next_ = 0;  // Round-robin cursor for external submissions.
};

}  // namespace sash::util

#endif  // SASH_UTIL_THREAD_POOL_H_
