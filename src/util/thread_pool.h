// A work-stealing thread pool for the batch analysis driver. Each worker owns
// a deque: it pushes and pops its own work at the back (LIFO, cache-warm) and
// steals from other workers at the front (FIFO, oldest first), so large tasks
// submitted early migrate to idle workers instead of serializing behind one
// queue. External submissions round-robin across workers.
//
//   sash::util::ThreadPool pool(8);
//   for (auto& file : files) pool.Submit([&] { Analyze(file); });
//   pool.Wait();                                // all submitted work done
//
// Submit is callable from pool threads too (a task submitted from a worker
// lands on that worker's own deque). Wait only returns when every task —
// including tasks submitted by tasks — has finished.
#ifndef SASH_UTIL_THREAD_POOL_H_
#define SASH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sash::util {

class ThreadPool {
 public:
  // `threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed. Safe to call repeatedly;
  // new work may be submitted afterwards.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

  // Total tasks stolen across all workers (scheduler telemetry, for tests
  // and for the "batch.steals" counter).
  int64_t steals() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
    int64_t steals = 0;  // Tasks this worker stole from others.
  };

  void WorkerLoop(int index);
  bool TryPopOwn(int index, std::function<void()>* task);
  bool TrySteal(int thief, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;  // Signaled on submit and shutdown.
  std::condition_variable done_cv_;  // Signaled when pending reaches zero.
  int64_t pending_ = 0;              // Submitted but not yet finished.
  int64_t queued_ = 0;               // Submitted but not yet picked up.
  bool shutdown_ = false;
  unsigned next_ = 0;  // Round-robin cursor for external submissions.
};

}  // namespace sash::util

#endif  // SASH_UTIL_THREAD_POOL_H_
