// Small string helpers shared across sash libraries. Kept deliberately tiny;
// anything with real semantics (shell word splitting, glob matching) lives in
// the module that owns those semantics.
#ifndef SASH_UTIL_STRINGS_H_
#define SASH_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sash {

// Splits `s` on `sep`, keeping empty fields ("a::b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Splits `s` into lines; a trailing newline does not produce an empty line.
std::vector<std::string> SplitLines(std::string_view s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Whitespace trimming (space, tab, newline, carriage return).
std::string_view TrimLeft(std::string_view s);
std::string_view TrimRight(std::string_view s);
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

// Escapes a string for display inside single quotes in diagnostics: control
// characters become \xNN, backslash and quote are escaped.
std::string EscapeForDisplay(std::string_view s);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

// ASCII-only lowercase conversion.
std::string AsciiLower(std::string_view s);

// Strict base-10 integer parsing for CLI flags and config values: an
// optional leading '-', then digits only — no whitespace, no trailing
// garbage, no empty input — with overflow checked against int64. Returns
// false (leaving *out untouched) on any violation, where atoi/atoll would
// silently return 0 or saturate.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace sash

#endif  // SASH_UTIL_STRINGS_H_
