// SHA-256 (FIPS 180-4), self-contained — the content-addressing primitive of
// the incremental analysis cache. Cache keys must be stable across processes
// and machines, so a vendored std::hash or pointer-based scheme is not an
// option; this is the reference algorithm, no dependencies.
//
//   sash::util::Sha256 h;
//   h.Update(script_text);
//   std::string key = h.HexDigest();          // 64 lowercase hex chars
//   // or, one-shot:
//   std::string key = sash::util::Sha256Hex(script_text);
#ifndef SASH_UTIL_SHA256_H_
#define SASH_UTIL_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sash::util {

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  // Finalizes and returns the 32-byte digest. The object is left finalized;
  // call Reset() to reuse it.
  std::array<uint8_t, 32> Digest();

  // Finalizes and returns the digest as 64 lowercase hex characters.
  std::string HexDigest();

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  bool finalized_ = false;
  std::array<uint8_t, 32> digest_{};
};

// One-shot convenience: hex digest of `data`.
std::string Sha256Hex(std::string_view data);

}  // namespace sash::util

#endif  // SASH_UTIL_SHA256_H_
