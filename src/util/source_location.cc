#include "util/source_location.h"

namespace sash {

SourceRange SourceRange::Join(const SourceRange& a, const SourceRange& b) {
  SourceRange out;
  out.begin = a.begin.offset <= b.begin.offset ? a.begin : b.begin;
  out.end = a.end.offset >= b.end.offset ? a.end : b.end;
  return out;
}

std::string SourceRange::ToString() const {
  std::string out = std::to_string(begin.line) + ":" + std::to_string(begin.column);
  if (end.offset > begin.offset) {
    out += "-" + std::to_string(end.line) + ":" + std::to_string(end.column);
  }
  return out;
}

}  // namespace sash
