// Source positions and ranges used by the lexer, parser, and every diagnostic
// the analyzer produces. Offsets are byte offsets into the original source
// text; lines and columns are 1-based and computed for display only.
#ifndef SASH_UTIL_SOURCE_LOCATION_H_
#define SASH_UTIL_SOURCE_LOCATION_H_

#include <cstddef>
#include <string>

namespace sash {

// A single point in a source buffer.
struct SourcePos {
  size_t offset = 0;  // Byte offset from the start of the buffer.
  int line = 1;       // 1-based line number.
  int column = 1;     // 1-based column number (bytes, not display width).

  bool operator==(const SourcePos&) const = default;
};

// A half-open range [begin, end) in a source buffer.
struct SourceRange {
  SourcePos begin;
  SourcePos end;

  bool operator==(const SourceRange&) const = default;

  // True when the range covers zero bytes.
  bool empty() const { return begin.offset == end.offset; }

  // Merges two ranges into the smallest range covering both.
  static SourceRange Join(const SourceRange& a, const SourceRange& b);

  // Renders as "line:col" or "line:col-line:col" for diagnostics.
  std::string ToString() const;
};

}  // namespace sash

#endif  // SASH_UTIL_SOURCE_LOCATION_H_
