#include "util/cancel.h"

namespace sash::util {

std::string_view CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kTimeout:
      return "timeout";
    case CancelReason::kStepCap:
      return "step-cap";
    case CancelReason::kStateCap:
      return "state-cap";
    case CancelReason::kDepthCap:
      return "depth-cap";
    case CancelReason::kInputTooLarge:
      return "input-too-large";
    case CancelReason::kExternal:
      return "external";
  }
  return "?";
}

}  // namespace sash::util
