// Global thread-safe string interner producing 32-bit `Symbol` ids.
//
// The analyzer's hot loops (symbolic execution, spec dispatch, stream
// typing) traffic heavily in short recurring strings: variable names,
// command names, parameter names. Interning turns those into integer ids so
// map keys compare in one instruction and every symbol carries a cached
// 64-bit FNV-1a hash of its *content* (used by the state digests; content —
// not id — because intern ids depend on thread interleaving under the batch
// driver and digests must be stable across runs).
//
// Properties:
//   - Symbols are never freed; the table only grows. Scripts are finite and
//     names are drawn from script text, so the population is bounded by the
//     input. `Interner::size()` is exported as the `hotpath.intern.size`
//     gauge so growth is observable.
//   - The table is sharded into lock-striped segments selected by content
//     hash. Each segment publishes an open-addressed id index via release
//     stores, so `Intern` of an already-seen string and all of `Find` /
//     `str()` / `view()` / `hash()` take zero locks; only a genuine
//     insertion takes its segment's lock ("intern.table" probe site). Under
//     the batch pool this is the difference between every worker serializing
//     on one mutex and workers only meeting when two of them coin a new
//     string whose hash lands in the same stripe.
//   - Entries live in immutable slabs whose pointers are published with
//     release stores (ids stay dense and process-global across segments).
//   - The empty string is pre-interned as id 0, so a default-constructed
//     Symbol is valid and means "".
#ifndef SASH_UTIL_INTERN_H_
#define SASH_UTIL_INTERN_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace sash::util {

class Symbol {
 public:
  // The empty symbol (id 0, "").
  constexpr Symbol() = default;

  // Interns `text`, returning its (process-wide) symbol.
  static Symbol Intern(std::string_view text);

  // Non-inserting, lock-free lookup: the symbol for `text` if it was
  // interned before, std::nullopt otherwise. Lets probe-style callers (e.g.
  // spec dispatch on arbitrary runtime command names) avoid growing the
  // table with misses, and never contends with writers.
  static std::optional<Symbol> Find(std::string_view text);

  const std::string& str() const;
  std::string_view view() const { return str(); }
  // Cached FNV-1a hash of the string content (run-stable).
  uint64_t hash() const;

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  // Orders by id (creation order), NOT lexicographically. Deterministic
  // within a process; do not use where cross-run ordering matters.
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  explicit constexpr Symbol(uint32_t id) : id_(id) {}
  friend class Interner;

  uint32_t id_ = 0;
};

class Interner {
 public:
  // Number of distinct strings interned so far (>= 1: "" is pre-interned).
  static size_t size();
};

}  // namespace sash::util

namespace std {
template <>
struct hash<sash::util::Symbol> {
  size_t operator()(sash::util::Symbol s) const noexcept {
    // ids are small and dense; spread them for unordered containers.
    uint64_t x = s.id();
    x *= 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(x ^ (x >> 32));
  }
};
}  // namespace std

#endif  // SASH_UTIL_INTERN_H_
