// Cooperative cancellation and budget token — the resilience primitive that
// lets any analysis be cut off mid-flight. The paper's JIT vision (§4) puts
// the analyzer inline with interactive shell use, where a pathological input
// must never hang the shell: every long-running phase (symbolic execution,
// stream typing, mining probes, the monitor loop) polls one shared token and
// winds down when a wall-clock deadline or a step/byte budget runs out,
// returning a partial, well-formed result instead of blocking.
//
//   util::CancelToken token;
//   token.SetDeadlineAfterMs(50);
//   options.cancel = &token;                  // threaded through the phases
//   ... analysis returns, possibly degraded, with token.reason() == kTimeout
//
// The hot-path check (CheckStep) is one relaxed atomic increment plus a
// branch; the clock is read only every kClockStride steps, so attaching a
// token to an analysis that never expires costs well under 2% (enforced by
// bench_resilience against the committed baseline).
#ifndef SASH_UTIL_CANCEL_H_
#define SASH_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace sash::util {

// Why an analysis was cut short. The same taxonomy covers token-driven
// cancellation (timeout, step/byte budgets, external) and the engine's own
// exploration caps (state-cap, depth-cap) so reports carry one
// machine-readable degradation reason wherever the cutoff originated.
enum class CancelReason : uint8_t {
  kNone = 0,
  kTimeout,        // Wall-clock deadline passed.
  kStepCap,        // The token's step budget ran out.
  kStateCap,       // symex dropped states at the max_states cap.
  kDepthCap,       // symex cut recursion at the max_call_depth cap.
  kInputTooLarge,  // Input exceeded the byte budget before analysis began.
  kExternal,       // Cancel() called from outside (fail-fast, shutdown).
};

// Stable machine-readable name ("timeout", "state-cap", ...).
std::string_view CancelReasonName(CancelReason reason);

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Budget configuration. Not thread-safe: configure before sharing the
  // token with workers. Zero (the default) disables the respective budget.
  void SetDeadlineAfterMs(int64_t ms) {
    has_deadline_ = ms > 0;
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
  }
  void set_step_budget(int64_t steps) { step_budget_ = steps; }
  void set_byte_budget(int64_t bytes) { byte_budget_ = bytes; }

  // Thread-safe external cancellation; the first reason recorded wins.
  void Cancel(CancelReason reason) {
    uint8_t expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                    std::memory_order_relaxed);
  }

  bool cancelled() const { return reason_.load(std::memory_order_relaxed) != 0; }
  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  // Hot-path poll: counts one step, enforces the step budget, and reads the
  // clock every kClockStride steps when a deadline is set. Returns true when
  // the token is (now) cancelled.
  bool CheckStep() {
    if (reason_.load(std::memory_order_relaxed) != 0) {
      return true;
    }
    const int64_t n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (step_budget_ > 0 && n > step_budget_) {
      Cancel(CancelReason::kStepCap);
      return true;
    }
    if (has_deadline_ && n % kClockStride == 0) {
      return CheckNow();
    }
    return false;
  }

  // Unconditional deadline check (one clock read). Phase boundaries use this
  // so a deadline that expired inside an un-tokened phase still cuts off the
  // phases after it.
  bool CheckNow() {
    if (cancelled()) {
      return true;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      Cancel(CancelReason::kTimeout);
      return true;
    }
    return false;
  }

  // Charges `bytes` against the byte budget; false (and cancellation with
  // kInputTooLarge) when the budget is exceeded.
  bool ChargeBytes(int64_t bytes) {
    if (byte_budget_ > 0 &&
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes > byte_budget_) {
      Cancel(CancelReason::kInputTooLarge);
      return false;
    }
    return !cancelled();
  }

  int64_t steps() const { return steps_.load(std::memory_order_relaxed); }

  // Steps between clock reads on the hot path (public so the bench and the
  // overhead tests can reason about the worst-case detection latency).
  static constexpr int64_t kClockStride = 64;

 private:
  std::atomic<uint8_t> reason_{0};
  std::atomic<int64_t> steps_{0};
  std::atomic<int64_t> bytes_{0};
  int64_t step_budget_ = 0;
  int64_t byte_budget_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace sash::util

#endif  // SASH_UTIL_CANCEL_H_
