// Process-level crash containment: run a piece of work in a forked child
// under setrlimit caps and get its result back over a pipe — or a decoded
// post-mortem (signal, OOM, runaway CPU) when the work did not survive. This
// is the layer that turns an analyzer SIGSEGV on one hostile script into a
// well-formed per-request failure instead of a dead `sash serve` daemon or a
// half-finished batch.
//
// The contract is deliberately tiny: the child runs `fn`, writes the
// returned string through a pipe, and _exit(2)s; the parent reads to EOF,
// waitpid(2)s, and classifies. Everything the worker computes must travel
// through the returned string — the child's memory is discarded.
//
//   util::WorkerLimits limits;
//   limits.max_rss_mb = 512;              // RLIMIT_AS: allocation bombs die here.
//   limits.cpu_seconds = 30;              // RLIMIT_CPU: infinite loops die here.
//   limits.wall_timeout_ms = 15000;       // Parent-side SIGKILL watchdog.
//   util::WorkerResult r = util::RunInWorker([&] { return Analyze(script); }, limits);
//   switch (r.outcome) { ... }            // kOk | kCrashed | kOom | ...
//
// fork(2) from a multithreaded process is safe here because the child calls
// no code that depends on another thread's locks being free except malloc,
// which glibc re-initializes via its pthread_atfork handlers; the analysis
// layers are otherwise self-contained. The caps bound the blast radius of
// anything that slips through: a wedged child is SIGKILLed by the wall
// watchdog and reported as a crash, never hung on.
#ifndef SASH_UTIL_SUBPROC_H_
#define SASH_UTIL_SUBPROC_H_

#include <cstdint>
#include <functional>
#include <string>

namespace sash::util {

struct WorkerLimits {
  // Address-space cap in MiB (RLIMIT_AS — Linux does not enforce RLIMIT_RSS,
  // so the address space is the practical resident-set proxy). 0 = no cap.
  // Allocation beyond the cap fails with bad_alloc, which the worker shim
  // catches and reports as kOom; allocators that abort instead surface as
  // kCrashed/kExit — either way the parent survives.
  int64_t max_rss_mb = 0;
  // CPU-time cap in seconds (RLIMIT_CPU). A worker that spins past it is
  // killed by SIGXCPU and classified kCrashed ("crashed:SIGXCPU"). 0 = none.
  int64_t cpu_seconds = 0;
  // Parent-side wall-clock watchdog: after this many milliseconds without
  // the child finishing, the parent SIGKILLs it (kTimeout). Catches workers
  // blocked on something that burns no CPU. 0 = wait forever.
  int64_t wall_timeout_ms = 0;
};

enum class WorkerOutcome : uint8_t {
  kOk = 0,      // fn ran to completion; `payload` is its return value.
  kOom,         // fn threw bad_alloc under max_rss_mb; the shim reported it.
  kCrashed,     // The child died on a signal (SIGSEGV, SIGABRT, SIGXCPU, ...).
  kExit,        // The child exited nonzero without a complete payload.
  kTimeout,     // The wall watchdog SIGKILLed a wedged child.
  kSpawnError,  // fork/pipe failed; `error` has errno text. No child ran —
                // callers may fall back to running fn in-process.
};

std::string_view WorkerOutcomeName(WorkerOutcome outcome);

struct WorkerResult {
  WorkerOutcome outcome = WorkerOutcome::kSpawnError;
  std::string payload;      // Complete fn() return value; only for kOk.
  int term_signal = 0;      // For kCrashed (and kTimeout: SIGKILL).
  int exit_code = 0;        // For kExit.
  std::string error;        // Human-readable detail for non-kOk outcomes.
  int64_t micros = 0;       // Wall time from fork to reaped.

  // "SIGSEGV", "SIGKILL", ... for term_signal; "SIG<n>" for exotic ones.
  std::string SignalName() const;
};

// "SIGSEGV" for SIGSEGV etc.; numeric fallback for signals without a name.
std::string SignalNameOf(int sig);

// Runs fn() in a forked child under `limits` and returns the classified
// outcome. Never throws; never blocks past wall_timeout_ms (+ reap time).
WorkerResult RunInWorker(const std::function<std::string()>& fn, const WorkerLimits& limits);

// True between fork and _exit inside a RunInWorker child. Lets deterministic
// fault hooks (`=crash`) confine real signals to sacrificial processes: the
// same plan in a non-isolated run degrades to a plain failure instead of
// killing the caller.
bool InWorker();

}  // namespace sash::util

#endif  // SASH_UTIL_SUBPROC_H_
