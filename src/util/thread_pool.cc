#include "util/thread_pool.h"

#include <string>

#include "util/faultinject.h"

namespace sash::util {

namespace {
// Which pool (and worker slot) the current thread belongs to, so Submit from
// inside a task goes to the caller's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads, obs::Hooks hooks) : hooks_(hooks) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) {
      threads = 1;
    }
  }
  if (hooks_.metrics != nullptr) {
    queue_gauge_ = hooks_.metrics->gauge("pool.queue_depth");
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<obs::ProfiledMutex> lock(idle_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  int target;
  if (tls_pool == this) {
    target = tls_index;
  } else {
    std::lock_guard<obs::ProfiledMutex> lock(idle_mu_);
    target = static_cast<int>(next_++ % workers_.size());
  }
  {
    std::lock_guard<obs::ProfiledMutex> lock(workers_[static_cast<size_t>(target)]->mu);
    workers_[static_cast<size_t>(target)]->deque.push_back(std::move(task));
  }
  int64_t depth;
  {
    std::lock_guard<obs::ProfiledMutex> lock(idle_mu_);
    ++pending_;
    depth = ++queued_;
  }
  if (queue_gauge_ != nullptr) {
    queue_gauge_->Set(depth);
  }
  if (hooks_.journal != nullptr) {
    hooks_.journal->Emit(obs::EventKind::kQueueDepth, "pool.queue", depth);
  }
  work_cv_.notify_one();
}

bool ThreadPool::TryPopOwn(int index, std::function<void()>* task) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  std::lock_guard<obs::ProfiledMutex> lock(w.mu);
  if (w.deque.empty()) {
    return false;
  }
  *task = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool ThreadPool::TrySteal(int thief, std::function<void()>* task) {
  const size_t n = workers_.size();
  for (size_t k = 1; k < n; ++k) {
    size_t victim = (static_cast<size_t>(thief) + k) % n;
    bool stolen = false;
    {
      Worker& w = *workers_[victim];
      std::lock_guard<obs::ProfiledMutex> lock(w.mu);
      if (!w.deque.empty()) {
        *task = std::move(w.deque.front());
        w.deque.pop_front();
        stolen = true;
      }
    }
    if (stolen) {
      workers_[static_cast<size_t>(thief)]->steals.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.journal != nullptr) {
        hooks_.journal->Emit(obs::EventKind::kSteal, "pool.steal", thief,
                             static_cast<int64_t>(victim));
      }
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(int index, std::function<void()>* task) {
  if (FaultInjector::enabled()) {
    // Chaos harness: a pool.task rule stalls the worker before it runs
    // the task, simulating a slow/starved core. Results must not change.
    FaultInjector::ApplyDelay(FaultInjector::Check(FaultSite::kPoolTask, "worker"));
  }
  if (hooks_.journal == nullptr && hooks_.tracer == nullptr) {
    (*task)();
    return;
  }
  if (hooks_.journal != nullptr) {
    hooks_.journal->Emit(obs::EventKind::kTaskStart, "pool.task", index);
  }
  obs::StopWatch watch;
  {
    obs::Span span(hooks_.tracer, "task");
    (*task)();
  }
  if (hooks_.journal != nullptr) {
    hooks_.journal->Emit(obs::EventKind::kTaskStop, "pool.task", index, watch.ElapsedMicros());
  }
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_index = index;
  if (hooks_.tracer != nullptr) {
    hooks_.tracer->SetThreadName(obs::CurrentThreadId(), "worker-" + std::to_string(index));
  }
  for (;;) {
    std::function<void()> task;
    if (TryPopOwn(index, &task) || TrySteal(index, &task)) {
      int64_t depth;
      {
        std::lock_guard<obs::ProfiledMutex> lock(idle_mu_);
        depth = --queued_;
      }
      if (queue_gauge_ != nullptr) {
        queue_gauge_->Set(depth);
      }
      RunTask(index, &task);
      std::lock_guard<obs::ProfiledMutex> lock(idle_mu_);
      if (--pending_ == 0) {
        done_cv_.notify_all();
      }
      continue;
    }
    // The queued_ predicate (checked under idle_mu_, which Submit also holds)
    // closes the missed-wakeup window between the deque probes above and the
    // wait below.
    std::unique_lock<obs::ProfiledMutex> lock(idle_mu_);
    work_cv_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
    if (shutdown_ && queued_ == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  // Workers decrement pending_ only after the task body returns, so
  // pending_ == 0 means "all queued and running work is finished".
  std::unique_lock<obs::ProfiledMutex> lock(idle_mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

int64_t ThreadPool::steals() const {
  int64_t total = 0;
  for (const auto& w : workers_) {
    total += w->steals.load(std::memory_order_relaxed);
  }
  return total;
}

int ThreadPool::CurrentWorkerIndex() { return tls_pool != nullptr ? tls_index : -1; }

}  // namespace sash::util
