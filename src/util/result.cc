#include "util/result.h"

namespace sash {

std::string_view ErrcName(Errc code) {
  switch (code) {
    case Errc::kOk:
      return "OK";
    case Errc::kNoEnt:
      return "ENOENT";
    case Errc::kNotDir:
      return "ENOTDIR";
    case Errc::kIsDir:
      return "EISDIR";
    case Errc::kExists:
      return "EEXIST";
    case Errc::kNotEmpty:
      return "ENOTEMPTY";
    case Errc::kLoop:
      return "ELOOP";
    case Errc::kInval:
      return "EINVAL";
    case Errc::kPerm:
      return "EPERM";
  }
  return "UNKNOWN";
}

}  // namespace sash
