#include "util/intern.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/lockprobe.h"
#include "util/hash.h"

namespace sash::util {
namespace {

struct Entry {
  std::string text;
  uint64_t content_hash = 0;
};

// Entries live in fixed-size slabs so `str()`/`hash()` can read them without
// a lock: a slab, once its pointer is release-published, is never moved, and
// an id is only handed out after its entry is fully constructed (the id then
// reaches other threads either via the segment index's release store or via
// ordinary program synchronization).
constexpr size_t kSlabBits = 12;
constexpr size_t kSlabSize = size_t{1} << kSlabBits;  // 4096 entries per slab
constexpr size_t kMaxSlabs = 1 << 12;                 // capacity ~16.7M symbols

// The id space stays global and dense (Symbol is a plain 32-bit index into
// the slabs) even though the *lookup* structure is sharded: segments race to
// fetch_add ids out of one counter, and whichever writer first needs a slab
// CAS-installs it.
struct SlabStore {
  std::atomic<Entry*> slabs[kMaxSlabs] = {};
  std::atomic<uint32_t> count{0};

  Entry* SlabFor(uint32_t id) {
    size_t slab = id >> kSlabBits;
    assert(slab < kMaxSlabs && "interner capacity exhausted");
    Entry* block = slabs[slab].load(std::memory_order_acquire);
    if (block == nullptr) {
      Entry* fresh = new Entry[kSlabSize];
      if (slabs[slab].compare_exchange_strong(block, fresh, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        block = fresh;
      } else {
        delete[] fresh;  // Another segment's writer won the race.
      }
    }
    return block;
  }
};

// Open-addressed id index for one segment. Slots hold id+1 (0 = empty) and
// transition empty -> occupied exactly once, with a release store, after the
// entry is fully built; readers probe with acquire loads and never see a
// partially constructed entry. The array is immutable in shape — growth
// builds a fresh larger array and release-publishes the pointer, while the
// outgrown array is retired (kept alive, never freed) so readers still
// probing it stay safe. Linear probing terminates because the writer rehashes
// before the load factor reaches 2/3, so every published array has empty
// slots.
struct Index {
  explicit Index(size_t capacity) : mask(capacity - 1), slots(capacity) {}
  const size_t mask;
  std::vector<std::atomic<uint32_t>> slots;  // Value-initialized to 0.
};

// One lock-striped segment. Strings map to segments by the top bits of their
// content hash (the probe sequence uses the low bits, so the two selections
// stay independent). alignas separates neighboring segments' mutexes and
// index pointers onto distinct cache lines — at -j8 every worker hammers
// these fields, and sharing a line would re-serialize what the sharding just
// split.
struct alignas(64) Segment {
  // Writer lock for genuine insertions only; every lookup — Intern of an
  // already-seen string, Find, str(), hash() — is lock-free. All segments
  // share one logical probe site ("intern.table"); per-instance stats merge
  // by name in LockProbes::Snapshot().
  obs::ProfiledMutex mu{"intern.table"};
  std::atomic<Index*> index{nullptr};
  std::vector<std::unique_ptr<Index>> owned;  // Live + retired index arrays.
  size_t used = 0;                            // Occupied slots; guarded by mu.
};

constexpr size_t kSegmentBits = 4;
constexpr size_t kSegments = size_t{1} << kSegmentBits;  // 16 lock stripes
constexpr size_t kInitialIndexSlots = 256;               // Per segment.

struct Table {
  SlabStore store;
  Segment segments[kSegments];

  Table() {
    // Pre-intern "" as id 0 so the default Symbol is valid.
    uint32_t id = Intern("", Fnv1a(""));
    (void)id;
    assert(id == 0);
  }

  Segment& SegmentFor(uint64_t hash) { return segments[hash >> (64 - kSegmentBits)]; }

  const Entry& EntryFor(uint32_t id) {
    Entry* slab = store.slabs[id >> kSlabBits].load(std::memory_order_acquire);
    return slab[id & (kSlabSize - 1)];
  }

  // Lock-free probe: id+1 of the entry matching (text, hash), or 0. Safe
  // concurrently with insertions and growth in the same segment.
  uint32_t Probe(Segment& seg, std::string_view text, uint64_t hash) {
    Index* idx = seg.index.load(std::memory_order_acquire);
    if (idx == nullptr) {
      return 0;
    }
    for (size_t i = hash & idx->mask;; i = (i + 1) & idx->mask) {
      uint32_t v = idx->slots[i].load(std::memory_order_acquire);
      if (v == 0) {
        return 0;
      }
      const Entry& e = EntryFor(v - 1);
      if (e.content_hash == hash && e.text == text) {
        return v;
      }
    }
  }

  // Requires seg.mu held. Returns the index to insert into, growing (and
  // republishing) first when the next insertion would cross 2/3 load.
  Index* EnsureRoom(Segment& seg) {
    Index* idx = seg.index.load(std::memory_order_relaxed);
    if (idx != nullptr && (seg.used + 1) * 3 <= (idx->mask + 1) * 2) {
      return idx;
    }
    size_t capacity = idx == nullptr ? kInitialIndexSlots : (idx->mask + 1) * 2;
    auto fresh = std::make_unique<Index>(capacity);
    if (idx != nullptr) {
      for (size_t i = 0; i <= idx->mask; ++i) {
        uint32_t v = idx->slots[i].load(std::memory_order_relaxed);
        if (v == 0) {
          continue;
        }
        size_t j = EntryFor(v - 1).content_hash & fresh->mask;
        while (fresh->slots[j].load(std::memory_order_relaxed) != 0) {
          j = (j + 1) & fresh->mask;
        }
        // Relaxed is enough: the release publication of the index pointer
        // below orders every slot store before any reader's acquire load.
        fresh->slots[j].store(v, std::memory_order_relaxed);
      }
    }
    Index* raw = fresh.get();
    seg.owned.push_back(std::move(fresh));  // The outgrown array is retired, not freed.
    seg.index.store(raw, std::memory_order_release);
    return raw;
  }

  uint32_t Intern(std::string_view text, uint64_t hash) {
    Segment& seg = SegmentFor(hash);
    // Fast path: an already-seen string costs a hash and a lock-free probe.
    if (uint32_t v = Probe(seg, text, hash)) {
      return v - 1;
    }
    std::lock_guard<obs::ProfiledMutex> lock(seg.mu);
    // Re-probe under the lock: a racing writer may have inserted it.
    if (uint32_t v = Probe(seg, text, hash)) {
      return v - 1;
    }
    Index* idx = EnsureRoom(seg);
    uint32_t id = store.count.fetch_add(1, std::memory_order_acq_rel);
    Entry& e = *(store.SlabFor(id) + (id & (kSlabSize - 1)));
    e.text.assign(text);
    e.content_hash = hash;
    size_t i = hash & idx->mask;
    while (idx->slots[i].load(std::memory_order_relaxed) != 0) {
      i = (i + 1) & idx->mask;
    }
    // The release store publishes the fully built entry to lock-free readers.
    idx->slots[i].store(id + 1, std::memory_order_release);
    ++seg.used;
    return id;
  }
};

Table& table() {
  static Table* t = new Table();  // intentionally leaked: symbols outlive statics
  return *t;
}

}  // namespace

Symbol Symbol::Intern(std::string_view text) {
  Table& t = table();
  return Symbol(t.Intern(text, Fnv1a(text)));
}

std::optional<Symbol> Symbol::Find(std::string_view text) {
  Table& t = table();
  uint64_t hash = Fnv1a(text);
  uint32_t v = t.Probe(t.SegmentFor(hash), text, hash);
  if (v == 0) {
    return std::nullopt;
  }
  return Symbol(v - 1);
}

const std::string& Symbol::str() const { return table().EntryFor(id_).text; }

uint64_t Symbol::hash() const { return table().EntryFor(id_).content_hash; }

size_t Interner::size() {
  return table().store.count.load(std::memory_order_acquire);
}

}  // namespace sash::util
