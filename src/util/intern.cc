#include "util/intern.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/lockprobe.h"
#include "util/hash.h"

namespace sash::util {
namespace {

struct Entry {
  std::string text;
  uint64_t content_hash = 0;
};

// Entries live in fixed-size slabs so `str()`/`hash()` can read them without
// a lock: a slab, once its pointer is release-published, is never moved, and
// an id is only handed out after its entry is fully constructed under the
// writer mutex (the id then reaches other threads via ordinary program
// synchronization).
constexpr size_t kSlabBits = 12;
constexpr size_t kSlabSize = size_t{1} << kSlabBits;  // 4096 entries per slab
constexpr size_t kMaxSlabs = 1 << 12;                 // capacity ~16.7M symbols

struct Table {
  // Writer lock for inserts; reads (str()/hash()) stay lock-free. This is a
  // known contention suspect under -j8 batch runs, hence the probe site.
  obs::ProfiledMutex mu{"intern.table"};
  std::unordered_map<std::string_view, uint32_t> ids;  // keys point into slabs
  std::atomic<Entry*> slabs[kMaxSlabs] = {};
  std::atomic<uint32_t> count{0};
  std::vector<std::unique_ptr<Entry[]>> owned;

  Table() {
    // Pre-intern "" as id 0 so the default Symbol is valid.
    InternLocked("");
  }

  // Requires mu held (or constructor).
  uint32_t InternLocked(std::string_view text) {
    auto it = ids.find(text);
    if (it != ids.end()) {
      return it->second;
    }
    uint32_t id = count.load(std::memory_order_relaxed);
    size_t slab = id >> kSlabBits;
    assert(slab < kMaxSlabs && "interner capacity exhausted");
    Entry* block = slabs[slab].load(std::memory_order_relaxed);
    if (block == nullptr) {
      owned.push_back(std::make_unique<Entry[]>(kSlabSize));
      block = owned.back().get();
      slabs[slab].store(block, std::memory_order_release);
    }
    Entry& e = block[id & (kSlabSize - 1)];
    e.text.assign(text);
    e.content_hash = Fnv1a(e.text);
    ids.emplace(std::string_view(e.text), id);
    count.store(id + 1, std::memory_order_release);
    return id;
  }
};

Table& table() {
  static Table* t = new Table();  // intentionally leaked: symbols outlive statics
  return *t;
}

const Entry& entry(uint32_t id) {
  Entry* slab = table().slabs[id >> kSlabBits].load(std::memory_order_acquire);
  return slab[id & (kSlabSize - 1)];
}

}  // namespace

Symbol Symbol::Intern(std::string_view text) {
  Table& t = table();
  std::lock_guard<obs::ProfiledMutex> lock(t.mu);
  return Symbol(t.InternLocked(text));
}

std::optional<Symbol> Symbol::Find(std::string_view text) {
  Table& t = table();
  std::lock_guard<obs::ProfiledMutex> lock(t.mu);
  auto it = t.ids.find(text);
  if (it == t.ids.end()) {
    return std::nullopt;
  }
  return Symbol(it->second);
}

const std::string& Symbol::str() const { return entry(id_).text; }

uint64_t Symbol::hash() const { return entry(id_).content_hash; }

size_t Interner::size() {
  return table().count.load(std::memory_order_acquire);
}

}  // namespace sash::util
