// Bump-pointer arena with destructor registration.
//
// The parser allocates every AST node out of one arena per parse, so a
// finished analysis tears the tree down without walking parent/child
// unique_ptr chains: block memory is released in O(blocks) frees, preceded
// by one linear sweep over the registered destructors (AST nodes own
// strings/vectors, so dtors can't be skipped wholesale — but the sweep is a
// flat array walk, not a pointer chase, and trivially-destructible types
// skip registration entirely).
//
// Not thread-safe: one arena belongs to one parse/analysis. The batch
// driver gives each worker its own parses, so this is never contended.
#ifndef SASH_UTIL_ARENA_H_
#define SASH_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sash::util {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { DestroyAll(); }

  // Allocates and constructs a T. The object lives until the arena dies;
  // never delete it manually.
  template <class T, class... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(Dtor{obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  // Raw aligned allocation (no destructor runs).
  void* Allocate(size_t size, size_t align) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + size > limit_) {
      Grow(size + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + size;
    bytes_used_ += size;
    return reinterpret_cast<void*>(p);
  }

  // Total bytes handed out (excludes block slack).
  size_t BytesAllocated() const { return bytes_used_; }
  size_t Blocks() const { return blocks_.size(); }

 private:
  struct Dtor {
    void* obj;
    void (*fn)(void*);
  };

  void Grow(size_t min_size);
  void DestroyAll();

  static constexpr size_t kFirstBlockSize = 4096;
  static constexpr size_t kMaxBlockSize = 256 * 1024;

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<Dtor> dtors_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_used_ = 0;
  size_t next_block_size_ = kFirstBlockSize;
};

}  // namespace sash::util

#endif  // SASH_UTIL_ARENA_H_
