// 64-bit FNV-1a hashing and mixing primitives for the hot-path digests.
//
// Everything in the analyzer that wants a cheap, run-stable fingerprint —
// interned strings, symbolic values, whole executor states — funnels through
// these helpers. Two properties matter and are load-bearing:
//
//   1. Content stability. Digests hash string *bytes*, never interner ids or
//      pointers, so the same script produces the same digests in every run
//      and under any thread interleaving (the batch driver analyzes files on
//      a work-stealing pool, so intern ids are not reproducible).
//   2. Domain separation. Composite digests seed each field with a distinct
//      tag constant before mixing, so e.g. a concrete value "a" can never
//      collide structurally with a language whose pattern is "a".
#ifndef SASH_UTIL_HASH_H_
#define SASH_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace sash::util {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// FNV-1a over a byte range, continuing from `h`.
constexpr uint64_t Fnv1a(std::string_view bytes, uint64_t h = kFnvOffsetBasis) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Mixes a 64-bit word into a running FNV hash, byte by byte (little-endian).
constexpr uint64_t FnvMix64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

// A strong finalizer (splitmix64) — run over per-element hashes before they
// enter a commutative sum so that low-entropy inputs don't cancel.
constexpr uint64_t HashFinalize(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-independent accumulator for digests of set/map-like containers
// (variable bindings, filesystem facts): elements may be added in any order
// and removal is exact (subtract what was added). Each element hash is
// finalized first so the sum is not trivially cancellable.
struct CommutativeDigest {
  uint64_t sum = 0;

  constexpr void Add(uint64_t element_hash) { sum += HashFinalize(element_hash); }
  constexpr void Remove(uint64_t element_hash) { sum -= HashFinalize(element_hash); }
  constexpr uint64_t value() const { return sum; }
};

}  // namespace sash::util

#endif  // SASH_UTIL_HASH_H_
