#include "util/subproc.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <new>

namespace sash::util {

namespace {

// Pipe payload framing: one tag byte, a u64 LE length, then the bytes. A
// child that dies mid-write leaves a short read, which the parent ignores —
// waitpid's status is the authoritative verdict for a dead child.
constexpr char kTagResult = 'R';
constexpr char kTagOom = 'O';

// A worker payload larger than this is a protocol violation (a runaway
// child spamming its pipe), not a result; the parent kills and classifies.
constexpr uint64_t kMaxPayloadBytes = 256ULL << 20;

bool g_in_worker = false;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// write(2) loop, EINTR-tolerant. The child has SIGPIPE ignored, so a parent
// that died mid-read yields EPIPE (abandon quietly) rather than a signal
// that would be misread as a worker crash.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void WriteFramed(int fd, char tag, const std::string& payload) {
  char header[9];
  header[0] = tag;
  uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) {
    header[1 + i] = static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  if (WriteAll(fd, header, sizeof(header))) {
    WriteAll(fd, payload.data(), payload.size());
  }
}

// The child body. Never returns; everything ends in _exit (no atexit
// handlers, no stream flushing — those belong to the parent image).
[[noreturn]] void RunChild(int write_fd, const std::function<std::string()>& fn,
                           const WorkerLimits& limits) {
  g_in_worker = true;
  ::signal(SIGPIPE, SIG_IGN);
  // Crashing workers are routine here (that is the point); core dumps for
  // each would bury CI artifacts.
  struct rlimit no_core = {0, 0};
  ::setrlimit(RLIMIT_CORE, &no_core);
  if (limits.max_rss_mb > 0) {
    rlim_t cap = static_cast<rlim_t>(limits.max_rss_mb) << 20;
    struct rlimit rl = {cap, cap};
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpu_seconds > 0) {
    rlim_t cap = static_cast<rlim_t>(limits.cpu_seconds);
    struct rlimit rl = {cap, cap};
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  try {
    std::string payload = fn();
    WriteFramed(write_fd, kTagResult, payload);
    ::close(write_fd);
    ::_exit(0);
  } catch (const std::bad_alloc&) {
    // The rss cap bit. The static message needs no allocation, so this path
    // works even when the heap is exhausted.
    static const std::string kOomMsg;  // Empty body; the tag is the message.
    WriteFramed(write_fd, kTagOom, kOomMsg);
    ::close(write_fd);
    ::_exit(0);
  } catch (...) {
    ::close(write_fd);
    ::_exit(3);
  }
}

// Reads the child's pipe to EOF (bounded by the wall watchdog), then reaps
// it. Returns the raw bytes; classification happens in RunInWorker.
struct ChildRead {
  std::string bytes;
  bool timed_out = false;
  bool overflow = false;
};

ChildRead ReadChild(int read_fd, pid_t pid, int64_t wall_timeout_ms, int64_t start_us) {
  ChildRead out;
  char buf[64 * 1024];
  for (;;) {
    int poll_ms = -1;
    if (wall_timeout_ms > 0) {
      int64_t left_ms = wall_timeout_ms - (NowUs() - start_us) / 1000;
      if (left_ms <= 0) {
        out.timed_out = true;
        break;
      }
      poll_ms = static_cast<int>(left_ms > 1000 ? 1000 : left_ms);
    }
    struct pollfd pfd = {read_fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (rc == 0) {
      continue;  // Re-check the wall deadline.
    }
    ssize_t n = ::read(read_fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (n == 0) {
      break;  // EOF: the child closed (exit or crash).
    }
    out.bytes.append(buf, static_cast<size_t>(n));
    if (out.bytes.size() > kMaxPayloadBytes + 9) {
      out.overflow = true;
      break;
    }
  }
  if (out.timed_out || out.overflow) {
    ::kill(pid, SIGKILL);
  }
  return out;
}

}  // namespace

std::string_view WorkerOutcomeName(WorkerOutcome outcome) {
  switch (outcome) {
    case WorkerOutcome::kOk:
      return "ok";
    case WorkerOutcome::kOom:
      return "oom";
    case WorkerOutcome::kCrashed:
      return "crashed";
    case WorkerOutcome::kExit:
      return "exit";
    case WorkerOutcome::kTimeout:
      return "timeout";
    case WorkerOutcome::kSpawnError:
      return "spawn_error";
  }
  return "?";
}

std::string SignalNameOf(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    case SIGKILL:
      return "SIGKILL";
    case SIGXCPU:
      return "SIGXCPU";
    case SIGTERM:
      return "SIGTERM";
    case SIGPIPE:
      return "SIGPIPE";
    default:
      return "SIG" + std::to_string(sig);
  }
}

std::string WorkerResult::SignalName() const { return SignalNameOf(term_signal); }

bool InWorker() { return g_in_worker; }

WorkerResult RunInWorker(const std::function<std::string()>& fn, const WorkerLimits& limits) {
  WorkerResult result;
  const int64_t start_us = NowUs();

  int fds[2];
  if (::pipe(fds) != 0) {
    result.outcome = WorkerOutcome::kSpawnError;
    result.error = std::string("pipe: ") + strerror(errno);
    return result;
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    result.outcome = WorkerOutcome::kSpawnError;
    result.error = std::string("fork: ") + strerror(errno);
    return result;
  }
  if (pid == 0) {
    ::close(fds[0]);
    RunChild(fds[1], fn, limits);  // noreturn
  }

  ::close(fds[1]);
  ChildRead read = ReadChild(fds[0], pid, limits.wall_timeout_ms, start_us);
  ::close(fds[0]);

  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  result.micros = NowUs() - start_us;

  if (read.timed_out) {
    result.outcome = WorkerOutcome::kTimeout;
    result.term_signal = SIGKILL;
    result.error = "worker exceeded the wall-clock watchdog (" +
                   std::to_string(limits.wall_timeout_ms) + "ms); killed";
    return result;
  }
  if (read.overflow) {
    result.outcome = WorkerOutcome::kExit;
    result.exit_code = -1;
    result.error = "worker result exceeded the payload cap; killed";
    return result;
  }
  if (reaped < 0) {
    result.outcome = WorkerOutcome::kSpawnError;
    result.error = std::string("waitpid: ") + strerror(errno);
    return result;
  }
  if (WIFSIGNALED(status)) {
    result.outcome = WorkerOutcome::kCrashed;
    result.term_signal = WTERMSIG(status);
    result.error = "worker crashed: " + SignalNameOf(result.term_signal);
    return result;
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  // Exit 0 promises a complete framed payload; decode it. Anything else —
  // nonzero exit, truncated frame, garbage tag — means no trustworthy
  // result came back.
  if (code == 0 && read.bytes.size() >= 9 &&
      (read.bytes[0] == kTagResult || read.bytes[0] == kTagOom)) {
    uint64_t len = 0;
    for (int i = 0; i < 8; ++i) {
      len |= static_cast<uint64_t>(static_cast<unsigned char>(read.bytes[1 + i])) << (8 * i);
    }
    if (read.bytes.size() == 9 + len) {
      if (read.bytes[0] == kTagOom) {
        result.outcome = WorkerOutcome::kOom;
        result.error = "worker ran out of memory under --max-rss-mb " +
                       std::to_string(limits.max_rss_mb);
        return result;
      }
      result.outcome = WorkerOutcome::kOk;
      result.payload = read.bytes.substr(9);
      return result;
    }
  }
  result.outcome = WorkerOutcome::kExit;
  result.exit_code = code;
  result.error = code == 0 ? "worker exited 0 with a truncated result"
                           : "worker exited " + std::to_string(code) + " without a result";
  return result;
}

}  // namespace sash::util
