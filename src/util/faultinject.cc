#include "util/faultinject.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace sash::util {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct RuleState {
  std::atomic<int64_t> occurrences{0};
  std::atomic<int64_t> fired{0};
};

struct ActivePlan {
  FaultPlan plan;
  // One counter pair per rule; sized at install, so Check never allocates.
  std::unique_ptr<RuleState[]> rule_state;
  std::atomic<int64_t> total_fires{0};
};

std::mutex g_install_mutex;
ActivePlan* g_active = nullptr;  // Leaked on purpose: Check may run at exit.

bool ParseAction(std::string_view text, FaultAction* action) {
  if (text == "fail") {
    *action = FaultAction::kFail;
  } else if (text == "torn") {
    *action = FaultAction::kTorn;
  } else if (text == "corrupt") {
    *action = FaultAction::kCorrupt;
  } else if (text == "delay") {
    *action = FaultAction::kDelay;
  } else if (text == "crash") {
    *action = FaultAction::kCrash;
  } else if (text == "enospc") {
    *action = FaultAction::kEnospc;
  } else {
    return false;
  }
  return true;
}

bool ParseSite(std::string_view text, FaultSite* site) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    FaultSite s = static_cast<FaultSite>(i);
    if (text == FaultSiteName(s)) {
      *site = s;
      return true;
    }
  }
  return false;
}

bool ParseInt(std::string_view text, int32_t* out) {
  if (text.empty() || text.size() > 9) {
    return false;
  }
  int32_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kCacheRead:
      return "cache.read";
    case FaultSite::kCacheWrite:
      return "cache.write";
    case FaultSite::kCacheRename:
      return "cache.rename";
    case FaultSite::kSpecLoad:
      return "spec.load";
    case FaultSite::kPoolTask:
      return "pool.task";
    case FaultSite::kAnalyzeFile:
      return "analyze.file";
    case FaultSite::kServeAccept:
      return "serve.accept";
    case FaultSite::kServeRead:
      return "serve.read";
    case FaultSite::kServeWrite:
      return "serve.write";
    case FaultSite::kServeDispatch:
      return "serve.dispatch";
    case FaultSite::kClientConnect:
      return "client.connect";
  }
  return "?";
}

bool FaultPlan::Parse(std::string_view text, FaultPlan* plan, std::string* error) {
  plan->rules.clear();
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view spec = Trim(text.substr(start, end - start));
    start = end + 1;
    if (spec.empty()) {
      if (start > text.size()) break;
      continue;
    }
    FaultRule rule;
    // Split off "=action" first; the remainder is site + modifiers.
    size_t eq = spec.find('=');
    if (eq != std::string_view::npos) {
      if (!ParseAction(Trim(spec.substr(eq + 1)), &rule.action)) {
        if (error) *error = "unknown fault action in rule: " + std::string(spec);
        return false;
      }
      spec = Trim(spec.substr(0, eq));
    }
    size_t site_end = spec.find_first_of("~#%@");
    std::string_view site_text = spec.substr(0, site_end);
    if (!ParseSite(Trim(site_text), &rule.site)) {
      if (error) *error = "unknown fault site in rule: " + std::string(spec);
      return false;
    }
    std::string_view mods =
        site_end == std::string_view::npos ? std::string_view() : spec.substr(site_end);
    while (!mods.empty()) {
      char kind = mods.front();
      mods.remove_prefix(1);
      size_t next = mods.find_first_of(kind == '~' ? "#%@" : "~#%@");
      std::string_view value = mods.substr(0, next);
      mods = next == std::string_view::npos ? std::string_view() : mods.substr(next);
      bool ok = true;
      switch (kind) {
        case '~':
          rule.match = std::string(value);
          break;
        case '#':
          ok = ParseInt(value, &rule.nth) && rule.nth > 0;
          break;
        case '%':
          ok = ParseInt(value, &rule.per_mille) && rule.per_mille <= 1000;
          break;
        case '@':
          ok = ParseInt(value, &rule.delay_ms);
          break;
        default:
          ok = false;
      }
      if (!ok) {
        if (error) {
          *error = std::string("bad '") + kind + "' modifier in rule: " + std::string(spec);
        }
        return false;
      }
    }
    plan->rules.push_back(std::move(rule));
  }
  if (plan->rules.empty()) {
    if (error) *error = "fault plan has no rules";
    return false;
  }
  return true;
}

FaultPlan FaultPlan::DefaultChaos(uint64_t seed) {
  // Only sites the pipeline must absorb with byte-identical functional
  // results: cache faults demote to misses or skipped writes, pool delays
  // reorder nothing observable, spec corruption demotes to a mine-cache
  // miss. analyze.file is deliberately absent — it changes outcomes.
  FaultPlan plan;
  plan.seed = seed;
  auto rate = [&plan](FaultSite site, FaultAction action, int32_t per_mille,
                      int32_t delay_ms = 2) {
    FaultRule rule;
    rule.site = site;
    rule.action = action;
    rule.per_mille = per_mille;
    rule.delay_ms = delay_ms;
    plan.rules.push_back(rule);
  };
  rate(FaultSite::kCacheRead, FaultAction::kTorn, 15);
  rate(FaultSite::kCacheRead, FaultAction::kCorrupt, 15);
  rate(FaultSite::kCacheRead, FaultAction::kFail, 10);
  rate(FaultSite::kCacheWrite, FaultAction::kFail, 15);
  rate(FaultSite::kCacheRename, FaultAction::kFail, 10);
  rate(FaultSite::kSpecLoad, FaultAction::kCorrupt, 10);
  rate(FaultSite::kPoolTask, FaultAction::kDelay, 10, /*delay_ms=*/1);
  // Serve-path sites the request loop must absorb without changing any
  // functional result: a delayed dispatch is invisible, a dropped accept or
  // a refused connect is retried by the client's backoff loop.
  rate(FaultSite::kServeDispatch, FaultAction::kDelay, 10, /*delay_ms=*/1);
  rate(FaultSite::kServeAccept, FaultAction::kFail, 10);
  rate(FaultSite::kClientConnect, FaultAction::kFail, 10);
  return plan;
}

std::atomic<int> FaultInjector::state_{kUninitialized};

void FaultInjector::Install(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_install_mutex);
  ActivePlan* next = new ActivePlan;
  next->plan = plan;
  next->rule_state = std::make_unique<RuleState[]>(plan.rules.size());
  delete g_active;
  g_active = next;
  state_.store(kEnabled, std::memory_order_release);
}

void FaultInjector::Uninstall() {
  std::lock_guard<std::mutex> lock(g_install_mutex);
  delete g_active;
  g_active = nullptr;
  state_.store(kDisabled, std::memory_order_release);
}

bool FaultInjector::InitFromEnv() {
  std::lock_guard<std::mutex> lock(g_install_mutex);
  int s = state_.load(std::memory_order_acquire);
  if (s != kUninitialized) {
    return s == kEnabled;
  }
  const char* plan_text = std::getenv("SASH_FAULT_PLAN");
  const char* seed_text = std::getenv("SASH_FAULT_SEED");
  uint64_t seed = seed_text ? std::strtoull(seed_text, nullptr, 10) : 0;
  FaultPlan plan;
  bool have_plan = false;
  if (plan_text && *plan_text) {
    std::string error;
    have_plan = FaultPlan::Parse(plan_text, &plan, &error);
    plan.seed = seed;
  } else if (seed_text && *seed_text) {
    plan = FaultPlan::DefaultChaos(seed);
    have_plan = true;
  }
  if (have_plan) {
    ActivePlan* next = new ActivePlan;
    next->plan = std::move(plan);
    next->rule_state = std::make_unique<RuleState[]>(next->plan.rules.size());
    g_active = next;
    state_.store(kEnabled, std::memory_order_release);
    return true;
  }
  state_.store(kDisabled, std::memory_order_release);
  return false;
}

FaultDecision FaultInjector::Check(FaultSite site, std::string_view detail) {
  FaultDecision decision;
  if (!enabled()) {
    return decision;
  }
  ActivePlan* active = g_active;
  if (active == nullptr) {
    return decision;
  }
  for (size_t i = 0; i < active->plan.rules.size(); ++i) {
    const FaultRule& rule = active->plan.rules[i];
    if (rule.site != site) {
      continue;
    }
    if (!rule.match.empty() && detail.find(rule.match) == std::string_view::npos) {
      continue;
    }
    RuleState& st = active->rule_state[i];
    const int64_t occurrence = st.occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
    if (rule.nth > 0 && occurrence != rule.nth) {
      continue;
    }
    // The roll hashes (seed, site, detail, rule) but NOT the occurrence
    // index, so rate-gated rules pick the same victims regardless of thread
    // scheduling — determinism is the whole point of the harness.
    const uint64_t roll =
        SplitMix64(active->plan.seed ^ Fnv1a64(detail) ^
                   (static_cast<uint64_t>(site) + 1) * 0x9E3779B97F4A7C15ULL ^
                   (i + 1) * 0xD1B54A32D192ED03ULL);
    if (rule.nth == 0 && rule.per_mille > 0 &&
        roll % 1000 >= static_cast<uint64_t>(rule.per_mille)) {
      continue;
    }
    if (rule.max_fires > 0 &&
        st.fired.load(std::memory_order_relaxed) >= rule.max_fires) {
      continue;
    }
    st.fired.fetch_add(1, std::memory_order_relaxed);
    active->total_fires.fetch_add(1, std::memory_order_relaxed);
    decision.action = rule.action;
    decision.delay_ms = rule.delay_ms;
    decision.roll = roll;
    return decision;
  }
  return decision;
}

void FaultInjector::ApplyDelay(const FaultDecision& decision) {
  if (decision.action == FaultAction::kDelay && decision.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(decision.delay_ms));
  }
}

void FaultInjector::ApplyPayloadFault(const FaultDecision& decision, std::string* payload) {
  if (payload == nullptr || payload->empty()) {
    return;
  }
  if (decision.action == FaultAction::kTorn) {
    payload->resize(decision.roll % payload->size());
  } else if (decision.action == FaultAction::kCorrupt) {
    const size_t index = decision.roll % payload->size();
    (*payload)[index] ^= static_cast<char>((decision.roll >> 8) | 1);
  }
}

int64_t FaultInjector::fires() {
  ActivePlan* active = g_active;
  return active != nullptr ? active->total_fires.load(std::memory_order_relaxed) : 0;
}

}  // namespace sash::util
