#include "syntax/word.h"

#include "syntax/ast.h"

namespace sash::syntax {

bool Word::IsStatic(std::string* out) const {
  std::string text;
  for (const WordPart& p : parts) {
    switch (p.kind) {
      case WordPartKind::kLiteral:
      case WordPartKind::kSingleQuoted:
        text += p.text;
        break;
      case WordPartKind::kDoubleQuoted:
        for (const WordPart& c : p.children) {
          if (c.kind != WordPartKind::kLiteral) {
            return false;
          }
          text += c.text;
        }
        break;
      default:
        return false;
    }
  }
  if (out != nullptr) {
    *out = std::move(text);
  }
  return true;
}

std::string ParamOpSpelling(ParamOp op, bool colon) {
  std::string c = colon ? ":" : "";
  switch (op) {
    case ParamOp::kPlain:
      return "";
    case ParamOp::kDefault:
      return c + "-";
    case ParamOp::kAssignDefault:
      return c + "=";
    case ParamOp::kErrorIfUnset:
      return c + "?";
    case ParamOp::kAlternative:
      return c + "+";
    case ParamOp::kRemSmallSuffix:
      return "%";
    case ParamOp::kRemLargeSuffix:
      return "%%";
    case ParamOp::kRemSmallPrefix:
      return "#";
    case ParamOp::kRemLargePrefix:
      return "##";
    case ParamOp::kLength:
      return "#";
  }
  return "";
}

namespace {

void RenderPart(const WordPart& p, std::string& out) {
  switch (p.kind) {
    case WordPartKind::kLiteral:
      out += p.text;
      break;
    case WordPartKind::kSingleQuoted:
      out += "'";
      out += p.text;
      out += "'";
      break;
    case WordPartKind::kDoubleQuoted:
      out += '"';
      for (const WordPart& c : p.children) {
        RenderPart(c, out);
      }
      out += '"';
      break;
    case WordPartKind::kParam:
      if (p.param_op == ParamOp::kPlain && p.param_arg == nullptr) {
        out += "$";
        // Braces needed when a name char could follow; always brace multi-char
        // names for clarity except simple specials.
        if (p.param_name.size() == 1 && !isalnum(static_cast<unsigned char>(p.param_name[0])) &&
            p.param_name[0] != '_') {
          out += p.param_name;
        } else {
          out += "{" + p.param_name + "}";
        }
      } else if (p.param_op == ParamOp::kLength) {
        out += "${#" + p.param_name + "}";
      } else {
        out += "${" + p.param_name + ParamOpSpelling(p.param_op, p.param_colon);
        if (p.param_arg != nullptr) {
          for (const WordPart& c : p.param_arg->parts) {
            RenderPart(c, out);
          }
        }
        out += "}";
      }
      break;
    case WordPartKind::kCommandSub:
      out += "$(" + p.command_text + ")";
      break;
    case WordPartKind::kArith:
      out += "$((" + p.text + "))";
      break;
    case WordPartKind::kGlobStar:
      out += "*";
      break;
    case WordPartKind::kGlobQuestion:
      out += "?";
      break;
    case WordPartKind::kGlobClass:
      out += "[" + p.text + "]";
      break;
    case WordPartKind::kTilde:
      out += "~" + p.text;
      break;
  }
}

}  // namespace

std::string Word::ToDisplayString() const {
  std::string out;
  for (const WordPart& p : parts) {
    RenderPart(p, out);
  }
  return out;
}

}  // namespace sash::syntax
