#include "syntax/parser.h"

#include <cctype>
#include <set>
#include <utility>

#include "util/strings.h"

namespace sash::syntax {

namespace {

bool IsNameStart(char c) {
  return c == '_' || std::isalpha(static_cast<unsigned char>(c));
}

bool IsNameChar(char c) { return c == '_' || std::isalnum(static_cast<unsigned char>(c)); }

// Reserved words that terminate an enclosing list.
const std::set<std::string_view>& TerminatorWords() {
  static const std::set<std::string_view> kWords = {"then", "else", "elif", "fi",  "do",
                                                    "done", "esac", "}",    "in"};
  return kWords;
}

// What stops a list: used to share ParseList between program/if/loops/case.
struct StopSpec {
  bool at_rparen = false;  // ')' ends the list (subshell, command substitution).
  bool at_dsemi = false;   // ';;' ends the list (case item).
  std::set<std::string_view> words;  // Bare terminator words.
};

class Parser {
 public:
  explicit Parser(std::string_view src,
                  std::shared_ptr<util::Arena> arena = nullptr)
      : src_(src),
        arena_(arena != nullptr ? std::move(arena)
                                : std::make_shared<util::Arena>()) {}

  ParseOutput Run() {
    ParseOutput out;
    out.program.arena = arena_;
    StopSpec stop;  // Nothing stops the top level but EOF.
    out.program.range.begin = Pos();
    out.program.body = ParseList(stop);
    SkipLineSpace();
    if (!AtEnd()) {
      Error("unexpected trailing input");
      // Consume the rest so the range is sensible.
      while (!AtEnd()) {
        Advance();
      }
    }
    out.program.range.end = Pos();
    out.diagnostics = std::move(diagnostics_);
    return out;
  }

  // Parses the body of a command substitution in place (after "$(").
  // Exposed via friend helper below.
  std::shared_ptr<Program> ParseSubstitutionBody() {
    auto prog = std::make_shared<Program>();
    // The sub-Program is owned by a word part that lives in the enclosing
    // arena; sharing that arena would make Program → Arena → node → Program
    // a shared_ptr cycle. Swap in a fresh arena for the body instead.
    std::shared_ptr<util::Arena> saved = std::exchange(arena_, std::make_shared<util::Arena>());
    prog->arena = arena_;
    prog->range.begin = Pos();
    StopSpec stop;
    stop.at_rparen = true;
    prog->body = ParseList(stop);
    prog->range.end = Pos();
    arena_ = std::move(saved);
    return prog;
  }

 private:
  // ---------- character access ----------

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Cur() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char At(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (AtEnd()) {
      return;
    }
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  SourcePos Pos() const { return SourcePos{pos_, line_, col_}; }

  void Error(std::string message) {
    SourcePos p = Pos();
    diagnostics_.push_back(Diagnostic{Severity::kError, "SASH-PARSE", SourceRange{p, p},
                                      std::move(message), {}});
  }

  // Skips spaces, tabs, line continuations, and comments — NOT newlines.
  void SkipLineSpace() {
    while (!AtEnd()) {
      char c = Cur();
      if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
      } else if (c == '\\' && At(1) == '\n') {
        Advance();
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Cur() != '\n') {
          Advance();
        }
      } else {
        break;
      }
    }
  }

  // Consumes a newline and then any pending here-document bodies.
  void ConsumeNewline() {
    Advance();  // The '\n'.
    for (PendingHeredoc& pending : pending_heredocs_) {
      std::string body;
      while (!AtEnd()) {
        size_t line_start = pos_;
        while (!AtEnd() && Cur() != '\n') {
          Advance();
        }
        std::string_view line = src_.substr(line_start, pos_ - line_start);
        if (!AtEnd()) {
          Advance();  // Consume the newline.
        }
        std::string_view compare = line;
        if (pending.strip_tabs) {
          while (!compare.empty() && compare.front() == '\t') {
            compare.remove_prefix(1);
          }
        }
        if (compare == pending.delimiter) {
          break;
        }
        if (pending.strip_tabs) {
          body.append(compare);
        } else {
          body.append(line);
        }
        body.push_back('\n');
      }
      *pending.slot = std::move(body);
    }
    pending_heredocs_.clear();
  }

  // Skips blank space including newlines (used after && and | where the
  // grammar allows line breaks).
  void SkipAllSpace() {
    while (true) {
      SkipLineSpace();
      if (!AtEnd() && Cur() == '\n') {
        ConsumeNewline();
      } else {
        break;
      }
    }
  }

  // ---------- bare-word lookahead ----------

  // Returns the next bare (unquoted, expansion-free) word without consuming
  // it, or "" when the next token is not a bare word. '{', '}', '!' count.
  std::string PeekBareWord() {
    SkipLineSpace();
    size_t p = pos_;
    if (p >= src_.size()) {
      return "";
    }
    char c = src_[p];
    if (c == '{' || c == '}' || c == '!') {
      // Must stand alone (followed by a delimiter).
      char n = p + 1 < src_.size() ? src_[p + 1] : '\0';
      if (n == '\0' || n == ' ' || n == '\t' || n == '\n' || n == ';' || n == ')' || n == '&' ||
          n == '|' || n == '<' || n == '>') {
        return std::string(1, c);
      }
      return "";
    }
    if (!IsNameStart(c)) {
      return "";
    }
    size_t q = p;
    while (q < src_.size() && IsNameChar(src_[q])) {
      ++q;
    }
    char n = q < src_.size() ? src_[q] : '\0';
    // A bare word must end at a delimiter; "fi2" or "fi=3" are not "fi".
    if (n == '\0' || n == ' ' || n == '\t' || n == '\n' || n == ';' || n == ')' || n == '(' ||
        n == '&' || n == '|' || n == '<' || n == '>') {
      return std::string(src_.substr(p, q - p));
    }
    return "";
  }

  bool ConsumeBareWord(std::string_view expected) {
    if (PeekBareWord() != expected) {
      return false;
    }
    SkipLineSpace();
    for (size_t i = 0; i < expected.size(); ++i) {
      Advance();
    }
    return true;
  }

  // Requires `expected` next; reports an error when missing.
  void ExpectBareWord(std::string_view expected, std::string_view context) {
    if (!ConsumeBareWord(expected)) {
      Error("expected '" + std::string(expected) + "' " + std::string(context));
    }
  }

  bool AtStop(const StopSpec& stop) {
    SkipLineSpace();
    if (AtEnd()) {
      return true;
    }
    if (stop.at_rparen && Cur() == ')') {
      return true;
    }
    if (Cur() == ';' && At(1) == ';') {
      return true;  // ';;' always ends the current list (or is an error).
    }
    std::string bare = PeekBareWord();
    if (!bare.empty() && (stop.words.count(bare) > 0 || TerminatorWords().count(bare) > 0)) {
      return true;
    }
    return false;
  }

  // ---------- lists ----------

  // list := and_or ((';' | '&' | '\n')+ and_or)*
  CommandPtr ParseList(const StopSpec& stop) {
    auto list = NewCommand();
    list->kind = CommandKind::kList;
    list->range.begin = Pos();

    while (true) {
      // Skip separators/newlines before a command.
      while (true) {
        SkipLineSpace();
        if (!AtEnd() && Cur() == '\n') {
          ConsumeNewline();
        } else {
          break;
        }
      }
      if (AtStop(stop) || AtEnd()) {
        break;
      }
      CommandPtr cmd = ParseAndOr();
      if (cmd == nullptr) {
        break;
      }
      ListOp op = ListOp::kSeq;
      SkipLineSpace();
      if (!AtEnd()) {
        if (Cur() == '&' && At(1) != '&') {
          Advance();
          op = ListOp::kBackground;
        } else if (Cur() == ';' && At(1) != ';') {
          Advance();
        }
      }
      list->list.commands.push_back(std::move(cmd));
      list->list.ops.push_back(op);
    }

    list->range.end = Pos();
    if (list->list.commands.empty()) {
      return nullptr;
    }
    if (list->list.commands.size() == 1 && list->list.ops[0] == ListOp::kSeq) {
      return std::move(list->list.commands[0]);
    }
    return list;
  }

  // and_or := pipeline (('&&' | '||') linebreak pipeline)*
  CommandPtr ParseAndOr() {
    CommandPtr first = ParsePipeline();
    if (first == nullptr) {
      return nullptr;
    }
    SkipLineSpace();
    if (AtEnd() || !((Cur() == '&' && At(1) == '&') || (Cur() == '|' && At(1) == '|'))) {
      return first;
    }
    auto list = NewCommand();
    list->kind = CommandKind::kList;
    list->range.begin = first->range.begin;
    list->list.commands.push_back(std::move(first));
    while (true) {
      SkipLineSpace();
      ListOp op;
      if (Cur() == '&' && At(1) == '&') {
        op = ListOp::kAnd;
      } else if (Cur() == '|' && At(1) == '|') {
        op = ListOp::kOr;
      } else {
        break;
      }
      Advance();
      Advance();
      SkipAllSpace();
      CommandPtr next = ParsePipeline();
      if (next == nullptr) {
        Error("expected a command after '&&'/'||'");
        break;
      }
      list->list.ops.push_back(op);
      list->list.commands.push_back(std::move(next));
    }
    list->list.ops.push_back(ListOp::kSeq);
    list->range.end = Pos();
    return list;
  }

  // pipeline := ['!'] command ('|' linebreak command)*
  CommandPtr ParsePipeline() {
    SkipLineSpace();
    bool negated = false;
    if (PeekBareWord() == "!") {
      ConsumeBareWord("!");
      negated = true;
      SkipLineSpace();
    }
    CommandPtr first = ParseCommand();
    if (first == nullptr) {
      if (negated) {
        Error("expected a command after '!'");
      }
      return nullptr;
    }
    SkipLineSpace();
    if (!negated && (AtEnd() || Cur() != '|' || At(1) == '|')) {
      return first;  // Single command, no wrapper needed.
    }
    auto pipe = NewCommand();
    pipe->kind = CommandKind::kPipeline;
    pipe->range.begin = first->range.begin;
    pipe->pipeline.negated = negated;
    pipe->pipeline.commands.push_back(std::move(first));
    while (!AtEnd() && Cur() == '|' && At(1) != '|') {
      Advance();
      SkipAllSpace();
      CommandPtr next = ParseCommand();
      if (next == nullptr) {
        Error("expected a command after '|'");
        break;
      }
      pipe->pipeline.commands.push_back(std::move(next));
      SkipLineSpace();
    }
    pipe->range.end = Pos();
    if (pipe->pipeline.commands.size() == 1 && !negated) {
      return std::move(pipe->pipeline.commands[0]);
    }
    return pipe;
  }

  // ---------- commands ----------

  CommandPtr ParseCommand() {
    SkipLineSpace();
    if (AtEnd() || Cur() == '\n') {
      return nullptr;
    }
    if (Cur() == '(') {
      return ParseSubshell();
    }
    std::string bare = PeekBareWord();
    if (bare == "if") {
      return ParseIf();
    }
    if (bare == "while" || bare == "until") {
      return ParseLoop(bare == "until");
    }
    if (bare == "for") {
      return ParseFor();
    }
    if (bare == "case") {
      return ParseCase();
    }
    if (bare == "{") {
      return ParseBraceGroup();
    }
    // Function definition: NAME '(' ')' compound-or-simple body.
    if (!bare.empty() && TerminatorWords().count(bare) == 0) {
      size_t save_pos = pos_;
      int save_line = line_;
      int save_col = col_;
      SkipLineSpace();
      SourcePos begin = Pos();
      for (size_t i = 0; i < bare.size(); ++i) {
        Advance();
      }
      SkipLineSpace();
      if (Cur() == '(' && At(1) == ')') {
        Advance();
        Advance();
        SkipAllSpace();
        auto fn = NewCommand();
        fn->kind = CommandKind::kFunctionDef;
        fn->range.begin = begin;
        fn->function.name = bare;
        fn->function.body = ParseCommand();
        if (fn->function.body == nullptr) {
          Error("expected a function body");
        }
        ParseTrailingRedirects(fn);
        fn->range.end = Pos();
        return fn;
      }
      pos_ = save_pos;
      line_ = save_line;
      col_ = save_col;
    }
    return ParseSimple();
  }

  CommandPtr ParseSubshell() {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kSubshell;
    cmd->range.begin = Pos();
    Advance();  // '('
    StopSpec stop;
    stop.at_rparen = true;
    cmd->subshell.body = ParseList(stop);
    SkipAllSpace();
    if (Cur() == ')') {
      Advance();
    } else {
      Error("expected ')' to close subshell");
    }
    ParseTrailingRedirects(cmd);
    cmd->range.end = Pos();
    return cmd;
  }

  CommandPtr ParseBraceGroup() {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kBraceGroup;
    cmd->range.begin = Pos();
    ConsumeBareWord("{");
    StopSpec stop;
    stop.words.insert("}");
    cmd->brace.body = ParseList(stop);
    ExpectBareWord("}", "to close group");
    ParseTrailingRedirects(cmd);
    cmd->range.end = Pos();
    return cmd;
  }

  CommandPtr ParseIf() {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kIf;
    cmd->range.begin = Pos();
    ConsumeBareWord("if");
    StopSpec cond_stop;
    cond_stop.words.insert("then");
    cmd->if_cmd.condition = ParseList(cond_stop);
    ExpectBareWord("then", "after if condition");
    StopSpec body_stop;
    body_stop.words = {"elif", "else", "fi"};
    cmd->if_cmd.then_body = ParseList(body_stop);
    std::string next = PeekBareWord();
    if (next == "elif") {
      // Desugar: elif chains become a nested If in the else branch. Consume
      // "elif" and re-enter as "if"; the nested parse consumes through "fi".
      SkipLineSpace();
      SourcePos elif_begin = Pos();
      ConsumeBareWord("elif");
      auto nested = NewCommand();
      nested->kind = CommandKind::kIf;
      nested->range.begin = elif_begin;
      nested->if_cmd.condition = ParseList(cond_stop);
      ExpectBareWord("then", "after elif condition");
      nested->if_cmd.then_body = ParseList(body_stop);
      // Recursively handle further elif/else by faking the tail parse.
      nested->if_cmd.else_body = ParseIfTail(body_stop);
      nested->range.end = Pos();
      cmd->if_cmd.else_body = std::move(nested);
      cmd->range.end = Pos();
      ParseTrailingRedirects(cmd);
      return cmd;
    }
    if (next == "else") {
      ConsumeBareWord("else");
      StopSpec else_stop;
      else_stop.words.insert("fi");
      cmd->if_cmd.else_body = ParseList(else_stop);
    }
    ExpectBareWord("fi", "to close if");
    ParseTrailingRedirects(cmd);
    cmd->range.end = Pos();
    return cmd;
  }

  // Handles the tail of an if after a then-body: elif.../else/fi. Consumes
  // through "fi". Returns the else-branch command (possibly a nested If).
  CommandPtr ParseIfTail(const StopSpec& body_stop) {
    std::string next = PeekBareWord();
    if (next == "elif") {
      SkipLineSpace();
      SourcePos begin = Pos();
      ConsumeBareWord("elif");
      auto nested = NewCommand();
      nested->kind = CommandKind::kIf;
      nested->range.begin = begin;
      StopSpec cond_stop;
      cond_stop.words.insert("then");
      nested->if_cmd.condition = ParseList(cond_stop);
      ExpectBareWord("then", "after elif condition");
      nested->if_cmd.then_body = ParseList(body_stop);
      nested->if_cmd.else_body = ParseIfTail(body_stop);
      nested->range.end = Pos();
      return nested;
    }
    if (next == "else") {
      ConsumeBareWord("else");
      StopSpec else_stop;
      else_stop.words.insert("fi");
      CommandPtr body = ParseList(else_stop);
      ExpectBareWord("fi", "to close if");
      return body;
    }
    ExpectBareWord("fi", "to close if");
    return nullptr;
  }

  CommandPtr ParseLoop(bool until) {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kLoop;
    cmd->range.begin = Pos();
    ConsumeBareWord(until ? "until" : "while");
    cmd->loop.until = until;
    StopSpec cond_stop;
    cond_stop.words.insert("do");
    cmd->loop.condition = ParseList(cond_stop);
    ExpectBareWord("do", "after loop condition");
    StopSpec body_stop;
    body_stop.words.insert("done");
    cmd->loop.body = ParseList(body_stop);
    ExpectBareWord("done", "to close loop");
    ParseTrailingRedirects(cmd);
    cmd->range.end = Pos();
    return cmd;
  }

  CommandPtr ParseFor() {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kFor;
    cmd->range.begin = Pos();
    ConsumeBareWord("for");
    std::string var = PeekBareWord();
    if (var.empty()) {
      Error("expected a variable name after 'for'");
    } else {
      ConsumeBareWord(var);
    }
    cmd->for_cmd.var = var;
    SkipAllSpace();
    if (PeekBareWord() == "in") {
      ConsumeBareWord("in");
      cmd->for_cmd.has_in = true;
      SkipLineSpace();
      while (!AtEnd() && Cur() != '\n' && Cur() != ';') {
        Word w = ParseWord(false);
        if (w.parts.empty()) {
          break;
        }
        cmd->for_cmd.words.push_back(std::move(w));
        SkipLineSpace();
      }
    }
    // Optional separator before 'do'.
    SkipLineSpace();
    if (Cur() == ';') {
      Advance();
    }
    SkipAllSpace();
    ExpectBareWord("do", "after for clause");
    StopSpec body_stop;
    body_stop.words.insert("done");
    cmd->for_cmd.body = ParseList(body_stop);
    ExpectBareWord("done", "to close for");
    ParseTrailingRedirects(cmd);
    cmd->range.end = Pos();
    return cmd;
  }

  CommandPtr ParseCase() {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kCase;
    cmd->range.begin = Pos();
    ConsumeBareWord("case");
    SkipLineSpace();
    cmd->case_cmd.subject = ParseWord(false);
    SkipAllSpace();
    ExpectBareWord("in", "after case subject");
    while (true) {
      SkipAllSpace();
      if (PeekBareWord() == "esac") {
        break;
      }
      if (AtEnd()) {
        Error("unterminated case (missing 'esac')");
        break;
      }
      CaseItem item;
      item.range.begin = Pos();
      SkipLineSpace();
      if (Cur() == '(') {
        Advance();
        SkipLineSpace();
      }
      while (true) {
        Word pat = ParseWord(/*in_case_pattern=*/true);
        if (pat.parts.empty()) {
          Error("expected a case pattern");
          break;
        }
        item.patterns.push_back(std::move(pat));
        SkipLineSpace();
        if (Cur() == '|') {
          Advance();
          SkipLineSpace();
          continue;
        }
        break;
      }
      SkipLineSpace();
      if (Cur() == ')') {
        Advance();
      } else {
        Error("expected ')' after case pattern");
      }
      StopSpec body_stop;
      body_stop.at_dsemi = true;
      body_stop.words.insert("esac");
      item.body = ParseList(body_stop);
      SkipLineSpace();
      if (Cur() == ';' && At(1) == ';') {
        Advance();
        Advance();
      }
      item.range.end = Pos();
      // Error recovery must consume input: a malformed item (e.g. a pattern
      // starting with '|') can fail every parse above without advancing, and
      // re-trying the same byte forever accumulates diagnostics unboundedly.
      if (item.range.end.offset == item.range.begin.offset && !AtEnd()) {
        Advance();
      }
      cmd->case_cmd.items.push_back(std::move(item));
    }
    ExpectBareWord("esac", "to close case");
    ParseTrailingRedirects(cmd);
    cmd->range.end = Pos();
    return cmd;
  }

  CommandPtr ParseSimple() {
    auto cmd = NewCommand();
    cmd->kind = CommandKind::kSimple;
    SkipLineSpace();
    cmd->range.begin = Pos();
    while (true) {
      SkipLineSpace();
      if (AtEnd()) {
        break;
      }
      char c = Cur();
      if (c == '\n' || c == ';' || c == '&' || c == '|' || c == ')' || c == '(') {
        break;
      }
      if (TryParseRedirect(&cmd->redirects)) {
        continue;
      }
      // Assignment prefix? Only before the first non-assignment word.
      if (cmd->simple.words.empty() && IsNameStart(c)) {
        size_t q = pos_;
        while (q < src_.size() && IsNameChar(src_[q])) {
          ++q;
        }
        if (q < src_.size() && src_[q] == '=') {
          Assignment a;
          a.range.begin = Pos();
          a.name = std::string(src_.substr(pos_, q - pos_));
          while (pos_ <= q) {
            Advance();  // Name and '='.
          }
          a.value = ParseWordAllowEmpty();
          a.range.end = Pos();
          cmd->simple.assignments.push_back(std::move(a));
          continue;
        }
      }
      Word w = ParseWord(false);
      if (w.parts.empty()) {
        break;
      }
      cmd->simple.words.push_back(std::move(w));
    }
    cmd->range.end = Pos();
    if (cmd->simple.words.empty() && cmd->simple.assignments.empty() && cmd->redirects.empty()) {
      return nullptr;
    }
    return cmd;
  }

  void ParseTrailingRedirects(Command* cmd) {
    while (true) {
      SkipLineSpace();
      if (!TryParseRedirect(&cmd->redirects)) {
        break;
      }
    }
  }

  // ---------- redirections ----------

  bool TryParseRedirect(std::vector<Redirect>* out) {
    SkipLineSpace();
    size_t save_pos = pos_;
    int save_line = line_;
    int save_col = col_;
    Redirect r;
    r.range.begin = Pos();
    // Optional fd digits immediately before the operator.
    int fd = -1;
    if (std::isdigit(static_cast<unsigned char>(Cur()))) {
      size_t q = pos_;
      int value = 0;
      while (q < src_.size() && std::isdigit(static_cast<unsigned char>(src_[q]))) {
        value = value * 10 + (src_[q] - '0');
        ++q;
      }
      if (q < src_.size() && (src_[q] == '<' || src_[q] == '>')) {
        fd = value;
        while (pos_ < q) {
          Advance();
        }
      } else {
        return false;  // A word that merely starts with digits.
      }
    }
    char c = Cur();
    if (c != '<' && c != '>') {
      pos_ = save_pos;
      line_ = save_line;
      col_ = save_col;
      return false;
    }
    bool heredoc = false;
    if (c == '<') {
      Advance();
      if (Cur() == '<') {
        Advance();
        if (Cur() == '-') {
          Advance();
          r.op = RedirOp::kHereDocTab;
        } else {
          r.op = RedirOp::kHereDoc;
        }
        heredoc = true;
      } else if (Cur() == '&') {
        Advance();
        r.op = RedirOp::kDupIn;
      } else if (Cur() == '>') {
        Advance();
        r.op = RedirOp::kReadWrite;
      } else {
        r.op = RedirOp::kIn;
      }
    } else {
      Advance();
      if (Cur() == '>') {
        Advance();
        r.op = RedirOp::kAppend;
      } else if (Cur() == '&') {
        Advance();
        r.op = RedirOp::kDupOut;
      } else if (Cur() == '|') {
        Advance();
        r.op = RedirOp::kClobber;
      } else {
        r.op = RedirOp::kOut;
      }
    }
    r.fd = fd;
    SkipLineSpace();
    r.target = ParseWord(false);
    if (r.target.parts.empty()) {
      Error("expected a redirection target");
    }
    if (heredoc) {
      // Delimiter: static text of the word; quoting disables body expansion.
      std::string delim;
      bool quoted = false;
      for (const WordPart& p : r.target.parts) {
        switch (p.kind) {
          case WordPartKind::kLiteral:
            delim += p.text;
            break;
          case WordPartKind::kSingleQuoted:
            delim += p.text;
            quoted = true;
            break;
          case WordPartKind::kDoubleQuoted:
            for (const WordPart& cp : p.children) {
              if (cp.kind == WordPartKind::kLiteral) {
                delim += cp.text;
              }
            }
            quoted = true;
            break;
          default:
            break;
        }
      }
      r.heredoc_quoted = quoted;
      r.heredoc_body = std::make_shared<std::string>();
      pending_heredocs_.push_back(
          PendingHeredoc{r.heredoc_body, delim, r.op == RedirOp::kHereDocTab});
    }
    r.range.end = Pos();
    out->push_back(std::move(r));
    return true;
  }

  // ---------- words ----------

  bool AtWordChar(bool in_case_pattern) const {
    if (AtEnd()) {
      return false;
    }
    char c = Cur();
    // Note '#' mid-word is a literal; comments are recognized only after
    // whitespace (in SkipLineSpace).
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return false;
    }
    if (c == ';' || c == '&' || c == '(' || c == ')') {
      return false;
    }
    if (c == '<' || c == '>') {
      return false;
    }
    if (c == '|') {
      return false;
    }
    (void)in_case_pattern;
    return true;
  }

  Word ParseWordAllowEmpty() {
    SkipNothing();
    Word w;
    w.range.begin = Pos();
    ParseWordParts(&w, /*in_case_pattern=*/false);
    w.range.end = Pos();
    if (w.parts.empty()) {
      // An explicit empty assignment value: represent as an empty literal.
      WordPart p;
      p.kind = WordPartKind::kLiteral;
      p.range = w.range;
      w.parts.push_back(std::move(p));
    }
    return w;
  }

  void SkipNothing() {}

  Word ParseWord(bool in_case_pattern) {
    SkipLineSpace();
    Word w;
    w.range.begin = Pos();
    ParseWordParts(&w, in_case_pattern);
    w.range.end = Pos();
    return w;
  }

  void ParseWordParts(Word* w, bool in_case_pattern) {
    std::string literal;
    SourcePos literal_begin = Pos();
    auto flush_literal = [&] {
      if (!literal.empty()) {
        WordPart p;
        p.kind = WordPartKind::kLiteral;
        p.text = std::move(literal);
        p.range = SourceRange{literal_begin, Pos()};
        w->parts.push_back(std::move(p));
        literal.clear();
      }
      literal_begin = Pos();
    };

    bool first = true;
    while (AtWordChar(in_case_pattern)) {
      char c = Cur();
      if (c == '\'') {
        flush_literal();
        w->parts.push_back(ParseSingleQuoted());
      } else if (c == '"') {
        flush_literal();
        w->parts.push_back(ParseDoubleQuoted());
      } else if (c == '\\') {
        Advance();
        if (AtEnd()) {
          literal += '\\';
          break;
        }
        if (Cur() == '\n') {
          Advance();  // Line continuation.
        } else {
          literal += Cur();
          Advance();
        }
      } else if (c == '$') {
        flush_literal();
        w->parts.push_back(ParseDollar());
      } else if (c == '`') {
        flush_literal();
        w->parts.push_back(ParseBackquote());
      } else if (c == '*') {
        flush_literal();
        WordPart p;
        p.kind = WordPartKind::kGlobStar;
        p.range.begin = Pos();
        Advance();
        p.range.end = Pos();
        w->parts.push_back(std::move(p));
      } else if (c == '?') {
        flush_literal();
        WordPart p;
        p.kind = WordPartKind::kGlobQuestion;
        p.range.begin = Pos();
        Advance();
        p.range.end = Pos();
        w->parts.push_back(std::move(p));
      } else if (c == '[') {
        // Glob class if a closing ']' appears before whitespace.
        size_t q = pos_ + 1;
        if (q < src_.size() && (src_[q] == '!' || src_[q] == '^')) {
          ++q;
        }
        if (q < src_.size() && src_[q] == ']') {
          ++q;  // Leading ']' is literal inside the class.
        }
        while (q < src_.size() && src_[q] != ']' && src_[q] != ' ' && src_[q] != '\t' &&
               src_[q] != '\n') {
          ++q;
        }
        if (q < src_.size() && src_[q] == ']') {
          flush_literal();
          WordPart p;
          p.kind = WordPartKind::kGlobClass;
          p.range.begin = Pos();
          Advance();  // '['
          while (pos_ < q) {
            p.text += Cur();
            Advance();
          }
          Advance();  // ']'
          p.range.end = Pos();
          w->parts.push_back(std::move(p));
        } else {
          literal += c;
          Advance();
        }
      } else if (c == '~' && first && w->parts.empty() && literal.empty()) {
        flush_literal();
        WordPart p;
        p.kind = WordPartKind::kTilde;
        p.range.begin = Pos();
        Advance();
        while (!AtEnd() && (IsNameChar(Cur()) || Cur() == '-')) {
          p.text += Cur();
          Advance();
        }
        p.range.end = Pos();
        w->parts.push_back(std::move(p));
      } else {
        literal += c;
        Advance();
      }
      first = false;
    }
    flush_literal();
  }

  WordPart ParseSingleQuoted() {
    WordPart p;
    p.kind = WordPartKind::kSingleQuoted;
    p.range.begin = Pos();
    Advance();  // Opening quote.
    while (!AtEnd() && Cur() != '\'') {
      p.text += Cur();
      Advance();
    }
    if (AtEnd()) {
      Error("unterminated single quote");
    } else {
      Advance();  // Closing quote.
    }
    p.range.end = Pos();
    return p;
  }

  WordPart ParseDoubleQuoted() {
    WordPart p;
    p.kind = WordPartKind::kDoubleQuoted;
    p.range.begin = Pos();
    Advance();  // Opening quote.
    std::string literal;
    SourcePos literal_begin = Pos();
    auto flush_literal = [&] {
      if (!literal.empty()) {
        WordPart lit;
        lit.kind = WordPartKind::kLiteral;
        lit.text = std::move(literal);
        lit.range = SourceRange{literal_begin, Pos()};
        p.children.push_back(std::move(lit));
        literal.clear();
      }
      literal_begin = Pos();
    };
    while (!AtEnd() && Cur() != '"') {
      char c = Cur();
      if (c == '\\') {
        char n = At(1);
        if (n == '$' || n == '`' || n == '"' || n == '\\') {
          Advance();
          literal += Cur();
          Advance();
        } else if (n == '\n') {
          Advance();
          Advance();
        } else {
          literal += '\\';
          Advance();
        }
      } else if (c == '$') {
        flush_literal();
        p.children.push_back(ParseDollar());
      } else if (c == '`') {
        flush_literal();
        p.children.push_back(ParseBackquote());
      } else {
        literal += c;
        Advance();
      }
    }
    flush_literal();
    if (AtEnd()) {
      Error("unterminated double quote");
    } else {
      Advance();  // Closing quote.
    }
    p.range.end = Pos();
    return p;
  }

  WordPart ParseDollar() {
    WordPart p;
    p.range.begin = Pos();
    Advance();  // '$'
    if (AtEnd()) {
      p.kind = WordPartKind::kLiteral;
      p.text = "$";
      p.range.end = Pos();
      return p;
    }
    char c = Cur();
    if (c == '(') {
      if (At(1) == '(') {
        // Arithmetic expansion $(( ... )).
        Advance();
        Advance();
        p.kind = WordPartKind::kArith;
        int depth = 0;
        while (!AtEnd()) {
          if (Cur() == '(') {
            ++depth;
          } else if (Cur() == ')') {
            if (depth == 0 && At(1) == ')') {
              break;
            }
            --depth;
          }
          p.text += Cur();
          Advance();
        }
        if (AtEnd()) {
          Error("unterminated arithmetic expansion");
        } else {
          Advance();  // ')'
          Advance();  // ')'
        }
        p.range.end = Pos();
        return p;
      }
      // Command substitution $( ... ): parse the program in place.
      Advance();  // '('
      p.kind = WordPartKind::kCommandSub;
      size_t body_begin = pos_;
      p.command = ParseSubstitutionBody();
      p.command_text = std::string(sash::Trim(src_.substr(body_begin, pos_ - body_begin)));
      SkipAllSpace();
      if (Cur() == ')') {
        Advance();
      } else {
        Error("unterminated command substitution");
      }
      p.range.end = Pos();
      return p;
    }
    if (c == '{') {
      Advance();  // '{'
      return ParseBracedParam(p.range.begin);
    }
    // $name and special parameters.
    p.kind = WordPartKind::kParam;
    if (IsNameStart(c)) {
      while (!AtEnd() && IsNameChar(Cur())) {
        p.param_name += Cur();
        Advance();
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '#' || c == '?' || c == '*' ||
               c == '@' || c == '$' || c == '!' || c == '-') {
      p.param_name = std::string(1, c);
      Advance();
    } else {
      p.kind = WordPartKind::kLiteral;
      p.text = "$";
    }
    p.range.end = Pos();
    return p;
  }

  // After "${" — parses name, operator, and argument through "}".
  WordPart ParseBracedParam(SourcePos begin) {
    WordPart p;
    p.kind = WordPartKind::kParam;
    p.range.begin = begin;
    if (Cur() == '#' && At(1) != '}') {
      // ${#name} — string length.
      Advance();
      p.param_op = ParamOp::kLength;
      while (!AtEnd() && (IsNameChar(Cur()) || std::string_view("?*@!$-").find(Cur()) !=
                                                   std::string_view::npos)) {
        p.param_name += Cur();
        Advance();
      }
      if (Cur() == '}') {
        Advance();
      } else {
        Error("expected '}' in ${#...}");
      }
      p.range.end = Pos();
      return p;
    }
    // Name (or special/positional).
    if (IsNameStart(Cur())) {
      while (!AtEnd() && IsNameChar(Cur())) {
        p.param_name += Cur();
        Advance();
      }
    } else if (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Cur())) ||
                            std::string_view("#?*@!$-").find(Cur()) != std::string_view::npos)) {
      p.param_name = std::string(1, Cur());
      Advance();
      // Multi-digit positionals: ${10}.
      while (std::isdigit(static_cast<unsigned char>(p.param_name[0])) && !AtEnd() &&
             std::isdigit(static_cast<unsigned char>(Cur()))) {
        p.param_name += Cur();
        Advance();
      }
    } else {
      Error("expected a parameter name in ${...}");
    }
    if (Cur() == '}') {
      Advance();
      p.range.end = Pos();
      return p;
    }
    // Operator.
    bool colon = false;
    if (Cur() == ':') {
      colon = true;
      Advance();
    }
    char opch = Cur();
    switch (opch) {
      case '-':
        p.param_op = ParamOp::kDefault;
        Advance();
        break;
      case '=':
        p.param_op = ParamOp::kAssignDefault;
        Advance();
        break;
      case '?':
        p.param_op = ParamOp::kErrorIfUnset;
        Advance();
        break;
      case '+':
        p.param_op = ParamOp::kAlternative;
        Advance();
        break;
      case '%':
        Advance();
        if (Cur() == '%') {
          Advance();
          p.param_op = ParamOp::kRemLargeSuffix;
        } else {
          p.param_op = ParamOp::kRemSmallSuffix;
        }
        break;
      case '#':
        Advance();
        if (Cur() == '#') {
          Advance();
          p.param_op = ParamOp::kRemLargePrefix;
        } else {
          p.param_op = ParamOp::kRemSmallPrefix;
        }
        break;
      default:
        Error(std::string("unsupported parameter operator '") + opch + "'");
        break;
    }
    p.param_colon = colon;
    // Argument word: parts until the matching '}'.
    auto arg = std::make_shared<Word>();
    arg->range.begin = Pos();
    std::string literal;
    SourcePos literal_begin = Pos();
    auto flush_literal = [&] {
      if (!literal.empty()) {
        WordPart lit;
        lit.kind = WordPartKind::kLiteral;
        lit.text = std::move(literal);
        lit.range = SourceRange{literal_begin, Pos()};
        arg->parts.push_back(std::move(lit));
        literal.clear();
      }
      literal_begin = Pos();
    };
    while (!AtEnd() && Cur() != '}') {
      char c = Cur();
      if (c == '\\') {
        Advance();
        if (!AtEnd()) {
          literal += Cur();
          Advance();
        }
      } else if (c == '$') {
        flush_literal();
        arg->parts.push_back(ParseDollar());
      } else if (c == '`') {
        flush_literal();
        arg->parts.push_back(ParseBackquote());
      } else if (c == '\'') {
        flush_literal();
        arg->parts.push_back(ParseSingleQuoted());
      } else if (c == '"') {
        flush_literal();
        arg->parts.push_back(ParseDoubleQuoted());
      } else if (c == '*') {
        flush_literal();
        WordPart g;
        g.kind = WordPartKind::kGlobStar;
        g.range.begin = Pos();
        Advance();
        g.range.end = Pos();
        arg->parts.push_back(std::move(g));
      } else if (c == '?') {
        flush_literal();
        WordPart g;
        g.kind = WordPartKind::kGlobQuestion;
        g.range.begin = Pos();
        Advance();
        g.range.end = Pos();
        arg->parts.push_back(std::move(g));
      } else {
        literal += c;
        Advance();
      }
    }
    flush_literal();
    arg->range.end = Pos();
    if (Cur() == '}') {
      Advance();
    } else {
      Error("unterminated ${...}");
    }
    p.param_arg = std::move(arg);
    p.range.end = Pos();
    return p;
  }

  WordPart ParseBackquote() {
    WordPart p;
    p.kind = WordPartKind::kCommandSub;
    p.backquoted = true;
    p.range.begin = Pos();
    Advance();  // '`'
    std::string inner;
    while (!AtEnd() && Cur() != '`') {
      if (Cur() == '\\' && (At(1) == '`' || At(1) == '\\' || At(1) == '$')) {
        Advance();
        inner += Cur();
        Advance();
      } else {
        inner += Cur();
        Advance();
      }
    }
    if (AtEnd()) {
      Error("unterminated backquote substitution");
    } else {
      Advance();  // Closing '`'.
    }
    p.command_text = inner;
    // Re-parse the unescaped inner text as its own program (own arena too —
    // sharing ours from an arena-resident node would be a shared_ptr cycle).
    // Positions inside refer to the extracted text, not the original source.
    Parser sub(inner);
    ParseOutput sub_out = sub.Run();
    for (Diagnostic& d : sub_out.diagnostics) {
      diagnostics_.push_back(std::move(d));
    }
    p.command = std::make_shared<Program>(std::move(sub_out.program));
    p.range.end = Pos();
    return p;
  }

  struct PendingHeredoc {
    std::shared_ptr<std::string> slot;
    std::string delimiter;
    bool strip_tabs = false;
  };

  // All Commands are allocated here; the Program keeps it alive.
  Command* NewCommand() { return arena_->New<Command>(); }

  std::string_view src_;
  std::shared_ptr<util::Arena> arena_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  std::vector<Diagnostic> diagnostics_;
  std::vector<PendingHeredoc> pending_heredocs_;
};

}  // namespace

ParseOutput Parse(std::string_view source) { return Parser(source).Run(); }

}  // namespace sash::syntax
