// The shell command AST: simple commands, pipelines, and-or lists, compound
// commands, function definitions, and redirections — the POSIX sh constructs
// the symbolic engine implements (the paper's §3 "semantics of state
// transformations" ingredient models exactly these composition primitives).
#ifndef SASH_SYNTAX_AST_H_
#define SASH_SYNTAX_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "syntax/word.h"
#include "util/source_location.h"

namespace sash::syntax {

struct Command;
using CommandPtr = std::unique_ptr<Command>;

// v=value prefix assignment on a simple command (or a bare assignment).
struct Assignment {
  std::string name;
  Word value;
  SourceRange range;
};

enum class RedirOp {
  kIn,          // <
  kOut,         // >
  kAppend,      // >>
  kClobber,     // >|
  kHereDoc,     // <<
  kHereDocTab,  // <<-
  kDupIn,       // <&
  kDupOut,      // >&
  kReadWrite,   // <>
};

struct Redirect {
  int fd = -1;  // -1 means the operator default (0 for input, 1 for output).
  RedirOp op = RedirOp::kOut;
  Word target;  // Filename, fd digits, or here-doc delimiter.
  // Here-document body; the slot is shared because the body text arrives only
  // at the next newline, after the owning command is fully built.
  std::shared_ptr<std::string> heredoc_body;
  bool heredoc_quoted = false;  // Delimiter was quoted => no expansion in body.
  SourceRange range;
};

// cmd [args...] with optional assignment prefix and redirections.
struct SimpleCommand {
  std::vector<Assignment> assignments;
  std::vector<Word> words;  // words[0] is the command name (may be absent).
};

// cmd1 | cmd2 | ... , optionally negated with '!'.
struct Pipeline {
  bool negated = false;
  std::vector<CommandPtr> commands;
};

enum class ListOp { kSeq, kAnd, kOr, kBackground };

// c1 op1 c2 op2 c3 ... — ops attach to the command on their left.
struct List {
  std::vector<CommandPtr> commands;
  std::vector<ListOp> ops;  // ops.size() == commands.size(); last op kSeq/kBackground.
};

struct Subshell {
  CommandPtr body;
};

struct BraceGroup {
  CommandPtr body;
};

struct If {
  CommandPtr condition;
  CommandPtr then_body;
  CommandPtr else_body;  // Null when absent; elif chains nest here.
};

struct Loop {
  bool until = false;  // false: while.
  CommandPtr condition;
  CommandPtr body;
};

struct For {
  std::string var;
  bool has_in = false;       // `for x in words...` vs `for x` ("$@").
  std::vector<Word> words;
  CommandPtr body;
};

struct CaseItem {
  std::vector<Word> patterns;
  CommandPtr body;  // May be null for an empty item.
  SourceRange range;
};

struct Case {
  Word subject;
  std::vector<CaseItem> items;
};

struct FunctionDef {
  std::string name;
  CommandPtr body;
};

enum class CommandKind {
  kSimple,
  kPipeline,
  kList,
  kSubshell,
  kBraceGroup,
  kIf,
  kLoop,
  kFor,
  kCase,
  kFunctionDef,
};

// A tagged union over command forms. A hand-rolled variant keeps the tree
// walkable with a switch and avoids std::variant's recursive-type contortions.
struct Command {
  CommandKind kind = CommandKind::kSimple;
  SourceRange range;
  std::vector<Redirect> redirects;  // Valid on every command form.

  SimpleCommand simple;    // kSimple
  Pipeline pipeline;       // kPipeline
  List list;               // kList
  Subshell subshell;       // kSubshell
  BraceGroup brace;        // kBraceGroup
  If if_cmd;               // kIf
  Loop loop;               // kLoop
  For for_cmd;             // kFor
  Case case_cmd;           // kCase
  FunctionDef function;    // kFunctionDef
};

// A whole script (or the inside of a command substitution).
struct Program {
  CommandPtr body;  // Null for an empty program.
  SourceRange range;
};

// Renders the AST back to shell syntax (normalized whitespace). Primarily for
// diagnostics and tests; not guaranteed byte-identical to the input.
std::string ToShellSyntax(const Program& program);
std::string ToShellSyntax(const Command& command);
std::string ToShellSyntax(const Word& word);

// Depth-first traversal helper: invokes `fn` on every command in the tree
// (including nested command substitutions when `into_substitutions`).
void VisitCommands(const Program& program, bool into_substitutions,
                   const std::function<void(const Command&)>& fn);

}  // namespace sash::syntax

#endif  // SASH_SYNTAX_AST_H_
