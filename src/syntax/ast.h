// The shell command AST: simple commands, pipelines, and-or lists, compound
// commands, function definitions, and redirections — the POSIX sh constructs
// the symbolic engine implements (the paper's §3 "semantics of state
// transformations" ingredient models exactly these composition primitives).
#ifndef SASH_SYNTAX_AST_H_
#define SASH_SYNTAX_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "syntax/word.h"
#include "util/arena.h"
#include "util/intern.h"
#include "util/source_location.h"

namespace sash::syntax {

struct Command;

// AST nodes are arena-owned: the parser allocates every Command out of the
// Program's arena, so child pointers are plain (non-owning) pointers and the
// whole tree tears down with the arena instead of a recursive unique_ptr
// chain. Null still means "absent".
using CommandPtr = Command*;

// v=value prefix assignment on a simple command (or a bare assignment).
struct Assignment {
  std::string name;
  Word value;
  SourceRange range;

  // Interned `name`, cached on first use. Lazy so hand-built nodes (tests)
  // work; not thread-safe on first call, but an AST is single-threaded.
  util::Symbol sym() const {
    if (sym_cache.empty() && !name.empty()) {
      sym_cache = util::Symbol::Intern(name);
    }
    return sym_cache;
  }
  mutable util::Symbol sym_cache;
};

enum class RedirOp {
  kIn,          // <
  kOut,         // >
  kAppend,      // >>
  kClobber,     // >|
  kHereDoc,     // <<
  kHereDocTab,  // <<-
  kDupIn,       // <&
  kDupOut,      // >&
  kReadWrite,   // <>
};

struct Redirect {
  int fd = -1;  // -1 means the operator default (0 for input, 1 for output).
  RedirOp op = RedirOp::kOut;
  Word target;  // Filename, fd digits, or here-doc delimiter.
  // Here-document body; the slot is shared because the body text arrives only
  // at the next newline, after the owning command is fully built.
  std::shared_ptr<std::string> heredoc_body;
  bool heredoc_quoted = false;  // Delimiter was quoted => no expansion in body.
  SourceRange range;
};

// cmd [args...] with optional assignment prefix and redirections.
struct SimpleCommand {
  std::vector<Assignment> assignments;
  std::vector<Word> words;  // words[0] is the command name (may be absent).
};

// cmd1 | cmd2 | ... , optionally negated with '!'.
struct Pipeline {
  bool negated = false;
  std::vector<CommandPtr> commands;
};

enum class ListOp { kSeq, kAnd, kOr, kBackground };

// c1 op1 c2 op2 c3 ... — ops attach to the command on their left.
struct List {
  std::vector<CommandPtr> commands;
  std::vector<ListOp> ops;  // ops.size() == commands.size(); last op kSeq/kBackground.
};

struct Subshell {
  CommandPtr body = nullptr;
};

struct BraceGroup {
  CommandPtr body = nullptr;
};

struct If {
  CommandPtr condition = nullptr;
  CommandPtr then_body = nullptr;
  CommandPtr else_body = nullptr;  // Null when absent; elif chains nest here.
};

struct Loop {
  bool until = false;  // false: while.
  CommandPtr condition = nullptr;
  CommandPtr body = nullptr;
};

struct For {
  std::string var;
  bool has_in = false;       // `for x in words...` vs `for x` ("$@").
  std::vector<Word> words;
  CommandPtr body = nullptr;

  // Interned loop variable, cached on first use (see Assignment::sym).
  util::Symbol var_sym() const {
    if (var_sym_cache.empty() && !var.empty()) {
      var_sym_cache = util::Symbol::Intern(var);
    }
    return var_sym_cache;
  }
  mutable util::Symbol var_sym_cache;
};

struct CaseItem {
  std::vector<Word> patterns;
  CommandPtr body = nullptr;  // May be null for an empty item.
  SourceRange range;
};

struct Case {
  Word subject;
  std::vector<CaseItem> items;
};

struct FunctionDef {
  std::string name;
  CommandPtr body = nullptr;

  // Interned function name, cached on first use (see Assignment::sym).
  util::Symbol sym() const {
    if (sym_cache.empty() && !name.empty()) {
      sym_cache = util::Symbol::Intern(name);
    }
    return sym_cache;
  }
  mutable util::Symbol sym_cache;
};

enum class CommandKind {
  kSimple,
  kPipeline,
  kList,
  kSubshell,
  kBraceGroup,
  kIf,
  kLoop,
  kFor,
  kCase,
  kFunctionDef,
};

// A tagged union over command forms. A hand-rolled variant keeps the tree
// walkable with a switch and avoids std::variant's recursive-type contortions.
struct Command {
  CommandKind kind = CommandKind::kSimple;
  SourceRange range;
  std::vector<Redirect> redirects;  // Valid on every command form.

  SimpleCommand simple;    // kSimple
  Pipeline pipeline;       // kPipeline
  List list;               // kList
  Subshell subshell;       // kSubshell
  BraceGroup brace;        // kBraceGroup
  If if_cmd;               // kIf
  Loop loop;               // kLoop
  For for_cmd;             // kFor
  Case case_cmd;           // kCase
  FunctionDef function;    // kFunctionDef
};

// A whole script (or the inside of a command substitution).
struct Program {
  CommandPtr body = nullptr;  // Null for an empty program.
  SourceRange range;
  // Owns every Command reachable from `body`. Each Program — including every
  // command-substitution sub-program — owns its own arena: a sub-Program is
  // held by a word part living in the enclosing arena, so sharing the
  // enclosing arena would be a shared_ptr cycle. Shared (not unique) so a
  // sub-program copied out of a word part can outlive the enclosing tree.
  // Null only for hand-built trees whose nodes outlive the Program by other
  // means (tests).
  std::shared_ptr<util::Arena> arena;
};

// Renders the AST back to shell syntax (normalized whitespace). Primarily for
// diagnostics and tests; not guaranteed byte-identical to the input.
std::string ToShellSyntax(const Program& program);
std::string ToShellSyntax(const Command& command);
std::string ToShellSyntax(const Word& word);

// Depth-first traversal helper: invokes `fn` on every command in the tree
// (including nested command substitutions when `into_substitutions`).
void VisitCommands(const Program& program, bool into_substitutions,
                   const std::function<void(const Command&)>& fn);

}  // namespace sash::syntax

#endif  // SASH_SYNTAX_AST_H_
