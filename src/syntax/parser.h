// Recursive-descent parser for POSIX sh. Scannerless: words are lexed in
// place, including their internal structure (quoting, parameter expansion,
// command substitution), because shell tokenization is context-dependent.
//
// Supported grammar (POSIX.1-2018 XCU §2, minus interactive features):
//   lists (; & newline), and-or (&& ||), pipelines (| and ! negation),
//   simple commands with assignment prefixes and redirections,
//   subshells ( ), brace groups { }, if/elif/else, while/until, for, case,
//   function definitions, here-documents, comments, line continuations.
//
// Parse never throws; errors are reported through the returned diagnostics
// and the parser recovers enough to keep analyzing the rest of the script.
#ifndef SASH_SYNTAX_PARSER_H_
#define SASH_SYNTAX_PARSER_H_

#include <string_view>
#include <vector>

#include "syntax/ast.h"
#include "util/diagnostics.h"

namespace sash::syntax {

struct ParseOutput {
  Program program;
  std::vector<Diagnostic> diagnostics;

  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) {
        return false;
      }
    }
    return true;
  }
};

ParseOutput Parse(std::string_view source);

}  // namespace sash::syntax

#endif  // SASH_SYNTAX_PARSER_H_
