// AST -> shell syntax rendering and generic traversal.
#include "syntax/ast.h"

namespace sash::syntax {

namespace {

void RenderCommand(const Command& cmd, std::string& out);

void RenderRedirects(const Command& cmd, std::string& out) {
  for (const Redirect& r : cmd.redirects) {
    out += ' ';
    if (r.fd >= 0) {
      out += std::to_string(r.fd);
    }
    switch (r.op) {
      case RedirOp::kIn:
        out += "<";
        break;
      case RedirOp::kOut:
        out += ">";
        break;
      case RedirOp::kAppend:
        out += ">>";
        break;
      case RedirOp::kClobber:
        out += ">|";
        break;
      case RedirOp::kHereDoc:
        out += "<<";
        break;
      case RedirOp::kHereDocTab:
        out += "<<-";
        break;
      case RedirOp::kDupIn:
        out += "<&";
        break;
      case RedirOp::kDupOut:
        out += ">&";
        break;
      case RedirOp::kReadWrite:
        out += "<>";
        break;
    }
    out += r.target.ToDisplayString();
  }
}

void RenderBody(const CommandPtr& body, std::string& out) {
  if (body != nullptr) {
    RenderCommand(*body, out);
  } else {
    out += ":";
  }
}

void RenderCommand(const Command& cmd, std::string& out) {
  switch (cmd.kind) {
    case CommandKind::kSimple: {
      bool first = true;
      for (const Assignment& a : cmd.simple.assignments) {
        if (!first) {
          out += ' ';
        }
        out += a.name + "=" + a.value.ToDisplayString();
        first = false;
      }
      for (const Word& w : cmd.simple.words) {
        if (!first) {
          out += ' ';
        }
        out += w.ToDisplayString();
        first = false;
      }
      break;
    }
    case CommandKind::kPipeline: {
      if (cmd.pipeline.negated) {
        out += "! ";
      }
      for (size_t i = 0; i < cmd.pipeline.commands.size(); ++i) {
        if (i > 0) {
          out += " | ";
        }
        RenderCommand(*cmd.pipeline.commands[i], out);
      }
      break;
    }
    case CommandKind::kList: {
      for (size_t i = 0; i < cmd.list.commands.size(); ++i) {
        RenderCommand(*cmd.list.commands[i], out);
        ListOp op = cmd.list.ops[i];
        bool last = i + 1 == cmd.list.commands.size();
        switch (op) {
          case ListOp::kSeq:
            if (!last) {
              out += "; ";
            }
            break;
          case ListOp::kAnd:
            out += " && ";
            break;
          case ListOp::kOr:
            out += " || ";
            break;
          case ListOp::kBackground:
            out += " &";
            if (!last) {
              out += ' ';
            }
            break;
        }
      }
      break;
    }
    case CommandKind::kSubshell:
      out += "( ";
      RenderBody(cmd.subshell.body, out);
      out += " )";
      break;
    case CommandKind::kBraceGroup:
      out += "{ ";
      RenderBody(cmd.brace.body, out);
      out += "; }";
      break;
    case CommandKind::kIf:
      out += "if ";
      RenderBody(cmd.if_cmd.condition, out);
      out += "; then ";
      RenderBody(cmd.if_cmd.then_body, out);
      if (cmd.if_cmd.else_body != nullptr) {
        out += "; else ";
        RenderBody(cmd.if_cmd.else_body, out);
      }
      out += "; fi";
      break;
    case CommandKind::kLoop:
      out += cmd.loop.until ? "until " : "while ";
      RenderBody(cmd.loop.condition, out);
      out += "; do ";
      RenderBody(cmd.loop.body, out);
      out += "; done";
      break;
    case CommandKind::kFor:
      out += "for " + cmd.for_cmd.var;
      if (cmd.for_cmd.has_in) {
        out += " in";
        for (const Word& w : cmd.for_cmd.words) {
          out += ' ';
          out += w.ToDisplayString();
        }
      }
      out += "; do ";
      RenderBody(cmd.for_cmd.body, out);
      out += "; done";
      break;
    case CommandKind::kCase:
      out += "case " + cmd.case_cmd.subject.ToDisplayString() + " in ";
      for (const CaseItem& item : cmd.case_cmd.items) {
        for (size_t i = 0; i < item.patterns.size(); ++i) {
          if (i > 0) {
            out += '|';
          }
          out += item.patterns[i].ToDisplayString();
        }
        out += ") ";
        RenderBody(item.body, out);
        out += " ;; ";
      }
      out += "esac";
      break;
    case CommandKind::kFunctionDef:
      out += cmd.function.name + "() ";
      RenderBody(cmd.function.body, out);
      break;
  }
  RenderRedirects(cmd, out);
}

void VisitWord(const Word& word, bool into_substitutions,
               const std::function<void(const Command&)>& fn);

void VisitPart(const WordPart& part, bool into_substitutions,
               const std::function<void(const Command&)>& fn) {
  switch (part.kind) {
    case WordPartKind::kDoubleQuoted:
      for (const WordPart& c : part.children) {
        VisitPart(c, into_substitutions, fn);
      }
      break;
    case WordPartKind::kParam:
      if (part.param_arg != nullptr) {
        VisitWord(*part.param_arg, into_substitutions, fn);
      }
      break;
    case WordPartKind::kCommandSub:
      if (into_substitutions && part.command != nullptr) {
        VisitCommands(*part.command, into_substitutions, fn);
      }
      break;
    default:
      break;
  }
}

void VisitWord(const Word& word, bool into_substitutions,
               const std::function<void(const Command&)>& fn) {
  for (const WordPart& p : word.parts) {
    VisitPart(p, into_substitutions, fn);
  }
}

void VisitCommand(const Command& cmd, bool subs, const std::function<void(const Command&)>& fn) {
  fn(cmd);
  for (const Redirect& r : cmd.redirects) {
    VisitWord(r.target, subs, fn);
  }
  switch (cmd.kind) {
    case CommandKind::kSimple:
      for (const Assignment& a : cmd.simple.assignments) {
        VisitWord(a.value, subs, fn);
      }
      for (const Word& w : cmd.simple.words) {
        VisitWord(w, subs, fn);
      }
      break;
    case CommandKind::kPipeline:
      for (const CommandPtr& c : cmd.pipeline.commands) {
        VisitCommand(*c, subs, fn);
      }
      break;
    case CommandKind::kList:
      for (const CommandPtr& c : cmd.list.commands) {
        VisitCommand(*c, subs, fn);
      }
      break;
    case CommandKind::kSubshell:
      if (cmd.subshell.body != nullptr) {
        VisitCommand(*cmd.subshell.body, subs, fn);
      }
      break;
    case CommandKind::kBraceGroup:
      if (cmd.brace.body != nullptr) {
        VisitCommand(*cmd.brace.body, subs, fn);
      }
      break;
    case CommandKind::kIf:
      if (cmd.if_cmd.condition != nullptr) {
        VisitCommand(*cmd.if_cmd.condition, subs, fn);
      }
      if (cmd.if_cmd.then_body != nullptr) {
        VisitCommand(*cmd.if_cmd.then_body, subs, fn);
      }
      if (cmd.if_cmd.else_body != nullptr) {
        VisitCommand(*cmd.if_cmd.else_body, subs, fn);
      }
      break;
    case CommandKind::kLoop:
      if (cmd.loop.condition != nullptr) {
        VisitCommand(*cmd.loop.condition, subs, fn);
      }
      if (cmd.loop.body != nullptr) {
        VisitCommand(*cmd.loop.body, subs, fn);
      }
      break;
    case CommandKind::kFor:
      for (const Word& w : cmd.for_cmd.words) {
        VisitWord(w, subs, fn);
      }
      if (cmd.for_cmd.body != nullptr) {
        VisitCommand(*cmd.for_cmd.body, subs, fn);
      }
      break;
    case CommandKind::kCase:
      VisitWord(cmd.case_cmd.subject, subs, fn);
      for (const CaseItem& item : cmd.case_cmd.items) {
        for (const Word& p : item.patterns) {
          VisitWord(p, subs, fn);
        }
        if (item.body != nullptr) {
          VisitCommand(*item.body, subs, fn);
        }
      }
      break;
    case CommandKind::kFunctionDef:
      if (cmd.function.body != nullptr) {
        VisitCommand(*cmd.function.body, subs, fn);
      }
      break;
  }
}

}  // namespace

std::string ToShellSyntax(const Program& program) {
  if (program.body == nullptr) {
    return "";
  }
  return ToShellSyntax(*program.body);
}

std::string ToShellSyntax(const Command& command) {
  std::string out;
  RenderCommand(command, out);
  return out;
}

std::string ToShellSyntax(const Word& word) { return word.ToDisplayString(); }

void VisitCommands(const Program& program, bool into_substitutions,
                   const std::function<void(const Command&)>& fn) {
  if (program.body == nullptr) {
    return;
  }
  VisitCommand(*program.body, into_substitutions, fn);
}

}  // namespace sash::syntax
