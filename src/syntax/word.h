// Shell words. A word is a concatenation of parts — literal text, quoted
// segments, parameter expansions, command substitutions, globs — which is the
// unit the symbolic engine expands. Example: "$STEAMROOT"/* has parts
//   DoubleQuoted[ Param{STEAMROOT} ], Literal{/}, Glob{*}.
#ifndef SASH_SYNTAX_WORD_H_
#define SASH_SYNTAX_WORD_H_

#include <memory>
#include <string>
#include <vector>

#include "util/intern.h"
#include "util/source_location.h"

namespace sash::syntax {

struct Program;  // Defined in syntax/ast.h.

// Parameter-expansion operators (POSIX 2.6.2).
enum class ParamOp {
  kPlain,          // $x / ${x}
  kDefault,        // ${x:-w} / ${x-w}
  kAssignDefault,  // ${x:=w} / ${x=w}
  kErrorIfUnset,   // ${x:?w} / ${x?w}
  kAlternative,    // ${x:+w} / ${x+w}
  kRemSmallSuffix, // ${x%w}
  kRemLargeSuffix, // ${x%%w}
  kRemSmallPrefix, // ${x#w}
  kRemLargePrefix, // ${x##w}
  kLength,         // ${#x}
};

enum class WordPartKind {
  kLiteral,       // Unquoted literal text (after backslash removal).
  kSingleQuoted,  // '...' — literal, no expansion.
  kDoubleQuoted,  // "..." — sub-parts expand, but no field splitting/glob.
  kParam,         // $name, ${name...}.
  kCommandSub,    // $(...) or `...`.
  kArith,         // $((...)) — kept as text; evaluated where possible.
  kGlobStar,      // Unquoted *.
  kGlobQuestion,  // Unquoted ?.
  kGlobClass,     // Unquoted [...]; `text` holds the class body.
  kTilde,         // Leading unquoted ~ (optionally ~user in `text`).
};

struct WordPart;

// A full word: one or more parts, concatenated.
struct Word {
  std::vector<WordPart> parts;
  SourceRange range;

  // True when the word consists solely of literal/single-quoted text (no
  // expansion can change it); `out` receives the static text.
  bool IsStatic(std::string* out = nullptr) const;

  // The literal spelling for diagnostics ("$STEAMROOT"/*), reconstructed.
  std::string ToDisplayString() const;
};

struct WordPart {
  WordPartKind kind = WordPartKind::kLiteral;
  std::string text;  // kLiteral / kSingleQuoted / kArith / kGlobClass / kTilde user.

  // kParam:
  std::string param_name;              // May be positional "0".."9", "#", "?", "*", "@".
  ParamOp param_op = ParamOp::kPlain;
  bool param_colon = false;            // The ':' variant (treats empty as unset).
  std::shared_ptr<Word> param_arg;     // Operator argument word (may be null).

  // Interned `param_name`, cached on first use. Lazy so hand-built parts
  // (tests) work; first call is not thread-safe, but ASTs are per-thread.
  util::Symbol param_sym() const {
    if (param_sym_cache.empty() && !param_name.empty()) {
      param_sym_cache = util::Symbol::Intern(param_name);
    }
    return param_sym_cache;
  }
  mutable util::Symbol param_sym_cache;

  // kDoubleQuoted: nested parts (literal/param/command-sub/arith).
  std::vector<WordPart> children;

  // kCommandSub: the parsed inner program.
  std::shared_ptr<Program> command;
  std::string command_text;  // Original text, for display.
  bool backquoted = false;   // `...` legacy form rather than $(...).

  SourceRange range;
};

// Spelling of a ParamOp ("%", ":-", ...) for display.
std::string ParamOpSpelling(ParamOp op, bool colon);

}  // namespace sash::syntax

#endif  // SASH_SYNTAX_WORD_H_
