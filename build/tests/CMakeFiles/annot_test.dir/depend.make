# Empty dependencies file for annot_test.
# This may be replaced when dependencies are built.
