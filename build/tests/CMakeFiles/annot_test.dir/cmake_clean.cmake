file(REMOVE_RECURSE
  "CMakeFiles/annot_test.dir/annot_test.cc.o"
  "CMakeFiles/annot_test.dir/annot_test.cc.o.d"
  "annot_test"
  "annot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
