# Empty dependencies file for rtypes_test.
# This may be replaced when dependencies are built.
