file(REMOVE_RECURSE
  "CMakeFiles/rtypes_test.dir/rtypes_test.cc.o"
  "CMakeFiles/rtypes_test.dir/rtypes_test.cc.o.d"
  "rtypes_test"
  "rtypes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtypes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
