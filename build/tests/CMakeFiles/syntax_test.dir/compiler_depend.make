# Empty compiler generated dependencies file for syntax_test.
# This may be replaced when dependencies are built.
