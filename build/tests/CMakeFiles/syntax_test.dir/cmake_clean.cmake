file(REMOVE_RECURSE
  "CMakeFiles/syntax_test.dir/syntax_test.cc.o"
  "CMakeFiles/syntax_test.dir/syntax_test.cc.o.d"
  "syntax_test"
  "syntax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
