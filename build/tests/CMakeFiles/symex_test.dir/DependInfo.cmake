
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/symex_test.cc" "tests/CMakeFiles/symex_test.dir/symex_test.cc.o" "gcc" "tests/CMakeFiles/symex_test.dir/symex_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symex/CMakeFiles/sash_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/sash_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/symfs/CMakeFiles/sash_symfs.dir/DependInfo.cmake"
  "/root/repo/build/src/specs/CMakeFiles/sash_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/sash_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sash_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
