file(REMOVE_RECURSE
  "CMakeFiles/symex_test.dir/symex_test.cc.o"
  "CMakeFiles/symex_test.dir/symex_test.cc.o.d"
  "symex_test"
  "symex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
