# Empty compiler generated dependencies file for symfs_test.
# This may be replaced when dependencies are built.
