file(REMOVE_RECURSE
  "CMakeFiles/symfs_test.dir/symfs_test.cc.o"
  "CMakeFiles/symfs_test.dir/symfs_test.cc.o.d"
  "symfs_test"
  "symfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
