file(REMOVE_RECURSE
  "CMakeFiles/deps_test.dir/deps_test.cc.o"
  "CMakeFiles/deps_test.dir/deps_test.cc.o.d"
  "deps_test"
  "deps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
