file(REMOVE_RECURSE
  "CMakeFiles/sash.dir/sash_main.cpp.o"
  "CMakeFiles/sash.dir/sash_main.cpp.o.d"
  "sash"
  "sash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
