# Empty compiler generated dependencies file for sash.
# This may be replaced when dependencies are built.
