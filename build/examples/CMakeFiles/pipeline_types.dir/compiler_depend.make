# Empty compiler generated dependencies file for pipeline_types.
# This may be replaced when dependencies are built.
