file(REMOVE_RECURSE
  "CMakeFiles/pipeline_types.dir/pipeline_types.cpp.o"
  "CMakeFiles/pipeline_types.dir/pipeline_types.cpp.o.d"
  "pipeline_types"
  "pipeline_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
