
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/steam_updater.cpp" "examples/CMakeFiles/steam_updater.dir/steam_updater.cpp.o" "gcc" "examples/CMakeFiles/steam_updater.dir/steam_updater.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/sash_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/annot/CMakeFiles/sash_annot.dir/DependInfo.cmake"
  "/root/repo/build/src/lint/CMakeFiles/sash_lint.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/sash_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/symfs/CMakeFiles/sash_symfs.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sash_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/rtypes/CMakeFiles/sash_rtypes.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/sash_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sash_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/sash_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/specs/CMakeFiles/sash_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sash_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
