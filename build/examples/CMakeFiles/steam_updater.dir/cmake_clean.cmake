file(REMOVE_RECURSE
  "CMakeFiles/steam_updater.dir/steam_updater.cpp.o"
  "CMakeFiles/steam_updater.dir/steam_updater.cpp.o.d"
  "steam_updater"
  "steam_updater.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steam_updater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
