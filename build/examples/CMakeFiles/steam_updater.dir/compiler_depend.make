# Empty compiler generated dependencies file for steam_updater.
# This may be replaced when dependencies are built.
