# Empty dependencies file for curl_verify.
# This may be replaced when dependencies are built.
