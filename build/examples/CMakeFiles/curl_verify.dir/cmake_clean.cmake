file(REMOVE_RECURSE
  "CMakeFiles/curl_verify.dir/curl_verify.cpp.o"
  "CMakeFiles/curl_verify.dir/curl_verify.cpp.o.d"
  "curl_verify"
  "curl_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curl_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
