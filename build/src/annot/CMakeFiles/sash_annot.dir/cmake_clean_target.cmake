file(REMOVE_RECURSE
  "libsash_annot.a"
)
