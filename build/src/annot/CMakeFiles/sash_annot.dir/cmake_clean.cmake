file(REMOVE_RECURSE
  "CMakeFiles/sash_annot.dir/annotations.cc.o"
  "CMakeFiles/sash_annot.dir/annotations.cc.o.d"
  "libsash_annot.a"
  "libsash_annot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_annot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
