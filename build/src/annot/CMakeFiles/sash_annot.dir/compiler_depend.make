# Empty compiler generated dependencies file for sash_annot.
# This may be replaced when dependencies are built.
