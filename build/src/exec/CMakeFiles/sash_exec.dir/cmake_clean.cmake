file(REMOVE_RECURSE
  "CMakeFiles/sash_exec.dir/commands.cc.o"
  "CMakeFiles/sash_exec.dir/commands.cc.o.d"
  "libsash_exec.a"
  "libsash_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
