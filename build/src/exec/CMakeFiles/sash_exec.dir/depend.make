# Empty dependencies file for sash_exec.
# This may be replaced when dependencies are built.
