file(REMOVE_RECURSE
  "libsash_exec.a"
)
