file(REMOVE_RECURSE
  "CMakeFiles/sash_specs.dir/hoare.cc.o"
  "CMakeFiles/sash_specs.dir/hoare.cc.o.d"
  "CMakeFiles/sash_specs.dir/library.cc.o"
  "CMakeFiles/sash_specs.dir/library.cc.o.d"
  "CMakeFiles/sash_specs.dir/syntax_spec.cc.o"
  "CMakeFiles/sash_specs.dir/syntax_spec.cc.o.d"
  "libsash_specs.a"
  "libsash_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
