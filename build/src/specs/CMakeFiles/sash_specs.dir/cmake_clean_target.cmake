file(REMOVE_RECURSE
  "libsash_specs.a"
)
