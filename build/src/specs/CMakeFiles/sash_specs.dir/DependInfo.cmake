
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specs/hoare.cc" "src/specs/CMakeFiles/sash_specs.dir/hoare.cc.o" "gcc" "src/specs/CMakeFiles/sash_specs.dir/hoare.cc.o.d"
  "/root/repo/src/specs/library.cc" "src/specs/CMakeFiles/sash_specs.dir/library.cc.o" "gcc" "src/specs/CMakeFiles/sash_specs.dir/library.cc.o.d"
  "/root/repo/src/specs/syntax_spec.cc" "src/specs/CMakeFiles/sash_specs.dir/syntax_spec.cc.o" "gcc" "src/specs/CMakeFiles/sash_specs.dir/syntax_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
