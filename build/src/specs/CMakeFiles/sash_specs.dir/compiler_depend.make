# Empty compiler generated dependencies file for sash_specs.
# This may be replaced when dependencies are built.
