file(REMOVE_RECURSE
  "libsash_util.a"
)
