# Empty compiler generated dependencies file for sash_util.
# This may be replaced when dependencies are built.
