file(REMOVE_RECURSE
  "CMakeFiles/sash_util.dir/diagnostics.cc.o"
  "CMakeFiles/sash_util.dir/diagnostics.cc.o.d"
  "CMakeFiles/sash_util.dir/result.cc.o"
  "CMakeFiles/sash_util.dir/result.cc.o.d"
  "CMakeFiles/sash_util.dir/source_location.cc.o"
  "CMakeFiles/sash_util.dir/source_location.cc.o.d"
  "CMakeFiles/sash_util.dir/strings.cc.o"
  "CMakeFiles/sash_util.dir/strings.cc.o.d"
  "libsash_util.a"
  "libsash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
