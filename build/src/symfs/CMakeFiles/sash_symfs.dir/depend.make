# Empty dependencies file for sash_symfs.
# This may be replaced when dependencies are built.
