file(REMOVE_RECURSE
  "libsash_symfs.a"
)
