file(REMOVE_RECURSE
  "CMakeFiles/sash_symfs.dir/symbolic_fs.cc.o"
  "CMakeFiles/sash_symfs.dir/symbolic_fs.cc.o.d"
  "libsash_symfs.a"
  "libsash_symfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_symfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
