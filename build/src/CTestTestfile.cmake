# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("regex")
subdirs("syntax")
subdirs("fs")
subdirs("specs")
subdirs("exec")
subdirs("mining")
subdirs("symfs")
subdirs("symex")
subdirs("rtypes")
subdirs("stream")
subdirs("monitor")
subdirs("annot")
subdirs("lint")
subdirs("core")
