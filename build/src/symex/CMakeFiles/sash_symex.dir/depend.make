# Empty dependencies file for sash_symex.
# This may be replaced when dependencies are built.
