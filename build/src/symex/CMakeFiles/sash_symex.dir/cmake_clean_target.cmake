file(REMOVE_RECURSE
  "libsash_symex.a"
)
