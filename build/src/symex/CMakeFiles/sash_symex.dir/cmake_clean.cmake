file(REMOVE_RECURSE
  "CMakeFiles/sash_symex.dir/builtins.cc.o"
  "CMakeFiles/sash_symex.dir/builtins.cc.o.d"
  "CMakeFiles/sash_symex.dir/engine.cc.o"
  "CMakeFiles/sash_symex.dir/engine.cc.o.d"
  "CMakeFiles/sash_symex.dir/expand.cc.o"
  "CMakeFiles/sash_symex.dir/expand.cc.o.d"
  "CMakeFiles/sash_symex.dir/state.cc.o"
  "CMakeFiles/sash_symex.dir/state.cc.o.d"
  "CMakeFiles/sash_symex.dir/value.cc.o"
  "CMakeFiles/sash_symex.dir/value.cc.o.d"
  "libsash_symex.a"
  "libsash_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
