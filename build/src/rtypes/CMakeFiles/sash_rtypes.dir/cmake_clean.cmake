file(REMOVE_RECURSE
  "CMakeFiles/sash_rtypes.dir/types.cc.o"
  "CMakeFiles/sash_rtypes.dir/types.cc.o.d"
  "libsash_rtypes.a"
  "libsash_rtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_rtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
