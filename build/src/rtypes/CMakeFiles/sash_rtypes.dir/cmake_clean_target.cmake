file(REMOVE_RECURSE
  "libsash_rtypes.a"
)
