# Empty dependencies file for sash_rtypes.
# This may be replaced when dependencies are built.
