file(REMOVE_RECURSE
  "CMakeFiles/sash_lint.dir/lint.cc.o"
  "CMakeFiles/sash_lint.dir/lint.cc.o.d"
  "libsash_lint.a"
  "libsash_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
