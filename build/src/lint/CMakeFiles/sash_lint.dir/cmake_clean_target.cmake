file(REMOVE_RECURSE
  "libsash_lint.a"
)
