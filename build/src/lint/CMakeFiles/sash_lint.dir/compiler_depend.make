# Empty compiler generated dependencies file for sash_lint.
# This may be replaced when dependencies are built.
