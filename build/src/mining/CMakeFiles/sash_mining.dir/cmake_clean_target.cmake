file(REMOVE_RECURSE
  "libsash_mining.a"
)
