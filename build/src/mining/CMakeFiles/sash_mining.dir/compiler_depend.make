# Empty compiler generated dependencies file for sash_mining.
# This may be replaced when dependencies are built.
