file(REMOVE_RECURSE
  "CMakeFiles/sash_mining.dir/doc_miner.cc.o"
  "CMakeFiles/sash_mining.dir/doc_miner.cc.o.d"
  "CMakeFiles/sash_mining.dir/man_corpus.cc.o"
  "CMakeFiles/sash_mining.dir/man_corpus.cc.o.d"
  "CMakeFiles/sash_mining.dir/pipeline.cc.o"
  "CMakeFiles/sash_mining.dir/pipeline.cc.o.d"
  "CMakeFiles/sash_mining.dir/prober.cc.o"
  "CMakeFiles/sash_mining.dir/prober.cc.o.d"
  "CMakeFiles/sash_mining.dir/spec_compiler.cc.o"
  "CMakeFiles/sash_mining.dir/spec_compiler.cc.o.d"
  "libsash_mining.a"
  "libsash_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
