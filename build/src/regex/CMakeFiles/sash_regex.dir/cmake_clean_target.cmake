file(REMOVE_RECURSE
  "libsash_regex.a"
)
