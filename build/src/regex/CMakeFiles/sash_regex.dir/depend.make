# Empty dependencies file for sash_regex.
# This may be replaced when dependencies are built.
