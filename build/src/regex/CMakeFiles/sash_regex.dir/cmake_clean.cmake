file(REMOVE_RECURSE
  "CMakeFiles/sash_regex.dir/ast.cc.o"
  "CMakeFiles/sash_regex.dir/ast.cc.o.d"
  "CMakeFiles/sash_regex.dir/char_set.cc.o"
  "CMakeFiles/sash_regex.dir/char_set.cc.o.d"
  "CMakeFiles/sash_regex.dir/derivative.cc.o"
  "CMakeFiles/sash_regex.dir/derivative.cc.o.d"
  "CMakeFiles/sash_regex.dir/dfa.cc.o"
  "CMakeFiles/sash_regex.dir/dfa.cc.o.d"
  "CMakeFiles/sash_regex.dir/glob.cc.o"
  "CMakeFiles/sash_regex.dir/glob.cc.o.d"
  "CMakeFiles/sash_regex.dir/nfa.cc.o"
  "CMakeFiles/sash_regex.dir/nfa.cc.o.d"
  "CMakeFiles/sash_regex.dir/parser.cc.o"
  "CMakeFiles/sash_regex.dir/parser.cc.o.d"
  "CMakeFiles/sash_regex.dir/regex.cc.o"
  "CMakeFiles/sash_regex.dir/regex.cc.o.d"
  "libsash_regex.a"
  "libsash_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
