file(REMOVE_RECURSE
  "libsash_syntax.a"
)
