# Empty compiler generated dependencies file for sash_syntax.
# This may be replaced when dependencies are built.
