file(REMOVE_RECURSE
  "CMakeFiles/sash_syntax.dir/parser.cc.o"
  "CMakeFiles/sash_syntax.dir/parser.cc.o.d"
  "CMakeFiles/sash_syntax.dir/printer.cc.o"
  "CMakeFiles/sash_syntax.dir/printer.cc.o.d"
  "CMakeFiles/sash_syntax.dir/word.cc.o"
  "CMakeFiles/sash_syntax.dir/word.cc.o.d"
  "libsash_syntax.a"
  "libsash_syntax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
