
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syntax/parser.cc" "src/syntax/CMakeFiles/sash_syntax.dir/parser.cc.o" "gcc" "src/syntax/CMakeFiles/sash_syntax.dir/parser.cc.o.d"
  "/root/repo/src/syntax/printer.cc" "src/syntax/CMakeFiles/sash_syntax.dir/printer.cc.o" "gcc" "src/syntax/CMakeFiles/sash_syntax.dir/printer.cc.o.d"
  "/root/repo/src/syntax/word.cc" "src/syntax/CMakeFiles/sash_syntax.dir/word.cc.o" "gcc" "src/syntax/CMakeFiles/sash_syntax.dir/word.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
