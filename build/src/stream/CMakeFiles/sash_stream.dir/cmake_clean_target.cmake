file(REMOVE_RECURSE
  "libsash_stream.a"
)
