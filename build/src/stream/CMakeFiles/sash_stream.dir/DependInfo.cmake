
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/dataflow.cc" "src/stream/CMakeFiles/sash_stream.dir/dataflow.cc.o" "gcc" "src/stream/CMakeFiles/sash_stream.dir/dataflow.cc.o.d"
  "/root/repo/src/stream/pipeline.cc" "src/stream/CMakeFiles/sash_stream.dir/pipeline.cc.o" "gcc" "src/stream/CMakeFiles/sash_stream.dir/pipeline.cc.o.d"
  "/root/repo/src/stream/typing_rules.cc" "src/stream/CMakeFiles/sash_stream.dir/typing_rules.cc.o" "gcc" "src/stream/CMakeFiles/sash_stream.dir/typing_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtypes/CMakeFiles/sash_rtypes.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/sash_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/sash_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
