# Empty dependencies file for sash_stream.
# This may be replaced when dependencies are built.
