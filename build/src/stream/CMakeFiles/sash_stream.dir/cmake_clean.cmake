file(REMOVE_RECURSE
  "CMakeFiles/sash_stream.dir/dataflow.cc.o"
  "CMakeFiles/sash_stream.dir/dataflow.cc.o.d"
  "CMakeFiles/sash_stream.dir/pipeline.cc.o"
  "CMakeFiles/sash_stream.dir/pipeline.cc.o.d"
  "CMakeFiles/sash_stream.dir/typing_rules.cc.o"
  "CMakeFiles/sash_stream.dir/typing_rules.cc.o.d"
  "libsash_stream.a"
  "libsash_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
