file(REMOVE_RECURSE
  "CMakeFiles/sash_monitor.dir/guard.cc.o"
  "CMakeFiles/sash_monitor.dir/guard.cc.o.d"
  "CMakeFiles/sash_monitor.dir/interp.cc.o"
  "CMakeFiles/sash_monitor.dir/interp.cc.o.d"
  "CMakeFiles/sash_monitor.dir/stream_monitor.cc.o"
  "CMakeFiles/sash_monitor.dir/stream_monitor.cc.o.d"
  "libsash_monitor.a"
  "libsash_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
