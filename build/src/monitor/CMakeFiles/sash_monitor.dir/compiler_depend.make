# Empty compiler generated dependencies file for sash_monitor.
# This may be replaced when dependencies are built.
