file(REMOVE_RECURSE
  "libsash_monitor.a"
)
