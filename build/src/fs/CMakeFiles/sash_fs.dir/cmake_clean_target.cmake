file(REMOVE_RECURSE
  "libsash_fs.a"
)
