# Empty dependencies file for sash_fs.
# This may be replaced when dependencies are built.
