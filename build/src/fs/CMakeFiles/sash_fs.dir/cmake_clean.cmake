file(REMOVE_RECURSE
  "CMakeFiles/sash_fs.dir/filesystem.cc.o"
  "CMakeFiles/sash_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/sash_fs.dir/glob.cc.o"
  "CMakeFiles/sash_fs.dir/glob.cc.o.d"
  "CMakeFiles/sash_fs.dir/path.cc.o"
  "CMakeFiles/sash_fs.dir/path.cc.o.d"
  "libsash_fs.a"
  "libsash_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
