
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/filesystem.cc" "src/fs/CMakeFiles/sash_fs.dir/filesystem.cc.o" "gcc" "src/fs/CMakeFiles/sash_fs.dir/filesystem.cc.o.d"
  "/root/repo/src/fs/glob.cc" "src/fs/CMakeFiles/sash_fs.dir/glob.cc.o" "gcc" "src/fs/CMakeFiles/sash_fs.dir/glob.cc.o.d"
  "/root/repo/src/fs/path.cc" "src/fs/CMakeFiles/sash_fs.dir/path.cc.o" "gcc" "src/fs/CMakeFiles/sash_fs.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
