file(REMOVE_RECURSE
  "libsash_core.a"
)
