file(REMOVE_RECURSE
  "CMakeFiles/sash_core.dir/analyzer.cc.o"
  "CMakeFiles/sash_core.dir/analyzer.cc.o.d"
  "CMakeFiles/sash_core.dir/deps.cc.o"
  "CMakeFiles/sash_core.dir/deps.cc.o.d"
  "libsash_core.a"
  "libsash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
