# Empty dependencies file for sash_core.
# This may be replaced when dependencies are built.
