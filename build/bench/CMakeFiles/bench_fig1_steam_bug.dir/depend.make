# Empty dependencies file for bench_fig1_steam_bug.
# This may be replaced when dependencies are built.
