file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_steam_bug.dir/bench_fig1_steam_bug.cpp.o"
  "CMakeFiles/bench_fig1_steam_bug.dir/bench_fig1_steam_bug.cpp.o.d"
  "bench_fig1_steam_bug"
  "bench_fig1_steam_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_steam_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
