file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_monitor_overhead.dir/bench_tab6_monitor_overhead.cpp.o"
  "CMakeFiles/bench_tab6_monitor_overhead.dir/bench_tab6_monitor_overhead.cpp.o.d"
  "bench_tab6_monitor_overhead"
  "bench_tab6_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
