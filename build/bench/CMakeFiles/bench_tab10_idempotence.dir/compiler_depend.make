# Empty compiler generated dependencies file for bench_tab10_idempotence.
# This may be replaced when dependencies are built.
