file(REMOVE_RECURSE
  "CMakeFiles/bench_tab10_idempotence.dir/bench_tab10_idempotence.cpp.o"
  "CMakeFiles/bench_tab10_idempotence.dir/bench_tab10_idempotence.cpp.o.d"
  "bench_tab10_idempotence"
  "bench_tab10_idempotence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab10_idempotence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
