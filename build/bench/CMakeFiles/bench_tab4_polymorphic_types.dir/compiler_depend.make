# Empty compiler generated dependencies file for bench_tab4_polymorphic_types.
# This may be replaced when dependencies are built.
