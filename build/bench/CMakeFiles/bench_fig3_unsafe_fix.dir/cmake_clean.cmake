file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_unsafe_fix.dir/bench_fig3_unsafe_fix.cpp.o"
  "CMakeFiles/bench_fig3_unsafe_fix.dir/bench_fig3_unsafe_fix.cpp.o.d"
  "bench_fig3_unsafe_fix"
  "bench_fig3_unsafe_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_unsafe_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
