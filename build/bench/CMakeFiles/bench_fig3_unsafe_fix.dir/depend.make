# Empty dependencies file for bench_fig3_unsafe_fix.
# This may be replaced when dependencies are built.
