# Empty dependencies file for bench_tab2_variant_robustness.
# This may be replaced when dependencies are built.
