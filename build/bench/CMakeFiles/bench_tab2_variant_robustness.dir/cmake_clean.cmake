file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_variant_robustness.dir/bench_tab2_variant_robustness.cpp.o"
  "CMakeFiles/bench_tab2_variant_robustness.dir/bench_tab2_variant_robustness.cpp.o.d"
  "bench_tab2_variant_robustness"
  "bench_tab2_variant_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_variant_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
