file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_fixpoint.dir/bench_tab5_fixpoint.cpp.o"
  "CMakeFiles/bench_tab5_fixpoint.dir/bench_tab5_fixpoint.cpp.o.d"
  "bench_tab5_fixpoint"
  "bench_tab5_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
