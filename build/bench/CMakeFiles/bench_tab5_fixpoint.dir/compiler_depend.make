# Empty compiler generated dependencies file for bench_tab5_fixpoint.
# This may be replaced when dependencies are built.
