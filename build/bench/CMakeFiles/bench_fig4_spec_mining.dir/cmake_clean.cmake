file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_spec_mining.dir/bench_fig4_spec_mining.cpp.o"
  "CMakeFiles/bench_fig4_spec_mining.dir/bench_fig4_spec_mining.cpp.o.d"
  "bench_fig4_spec_mining"
  "bench_fig4_spec_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_spec_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
