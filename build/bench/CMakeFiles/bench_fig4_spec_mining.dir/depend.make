# Empty dependencies file for bench_fig4_spec_mining.
# This may be replaced when dependencies are built.
