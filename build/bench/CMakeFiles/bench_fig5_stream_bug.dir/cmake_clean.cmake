file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_stream_bug.dir/bench_fig5_stream_bug.cpp.o"
  "CMakeFiles/bench_fig5_stream_bug.dir/bench_fig5_stream_bug.cpp.o.d"
  "bench_fig5_stream_bug"
  "bench_fig5_stream_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_stream_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
