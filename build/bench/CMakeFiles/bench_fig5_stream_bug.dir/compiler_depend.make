# Empty compiler generated dependencies file for bench_fig5_stream_bug.
# This may be replaced when dependencies are built.
