file(REMOVE_RECURSE
  "CMakeFiles/bench_tab8_verify_policy.dir/bench_tab8_verify_policy.cpp.o"
  "CMakeFiles/bench_tab8_verify_policy.dir/bench_tab8_verify_policy.cpp.o.d"
  "bench_tab8_verify_policy"
  "bench_tab8_verify_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab8_verify_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
