# Empty compiler generated dependencies file for bench_tab8_verify_policy.
# This may be replaced when dependencies are built.
