
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab8_verify_policy.cpp" "bench/CMakeFiles/bench_tab8_verify_policy.dir/bench_tab8_verify_policy.cpp.o" "gcc" "bench/CMakeFiles/bench_tab8_verify_policy.dir/bench_tab8_verify_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/sash_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sash_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sash_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/rtypes/CMakeFiles/sash_rtypes.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/sash_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/sash_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/specs/CMakeFiles/sash_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sash_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
