file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_fs_contradiction.dir/bench_tab3_fs_contradiction.cpp.o"
  "CMakeFiles/bench_tab3_fs_contradiction.dir/bench_tab3_fs_contradiction.cpp.o.d"
  "bench_tab3_fs_contradiction"
  "bench_tab3_fs_contradiction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_fs_contradiction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
