# Empty dependencies file for bench_tab3_fs_contradiction.
# This may be replaced when dependencies are built.
