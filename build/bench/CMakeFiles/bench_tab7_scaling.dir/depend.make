# Empty dependencies file for bench_tab7_scaling.
# This may be replaced when dependencies are built.
