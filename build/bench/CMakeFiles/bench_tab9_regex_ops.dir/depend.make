# Empty dependencies file for bench_tab9_regex_ops.
# This may be replaced when dependencies are built.
