file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_safe_fix.dir/bench_fig2_safe_fix.cpp.o"
  "CMakeFiles/bench_fig2_safe_fix.dir/bench_fig2_safe_fix.cpp.o.d"
  "bench_fig2_safe_fix"
  "bench_fig2_safe_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_safe_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
