# Empty dependencies file for bench_fig2_safe_fix.
# This may be replaced when dependencies are built.
